//! HDT-like compressed binary formats for knowledge bases.
//!
//! The paper stores its KBs as HDT files: a binary, dictionary-compressed
//! representation that supports atom-level retrieval without full
//! decompression (§3.5.1). Two generations of that idea live here:
//!
//! **`RKB1`** — the original row-oriented format:
//!
//! ```text
//! magic "RKB1" | flags u8
//! node dictionary:  count, then (kind u8, front-coded key)
//! pred dictionary:  count, then front-coded IRI
//! triple section:   per predicate: fact count, delta-encoded (s, o) runs
//! footer:           FNV-1a checksum of everything before it
//! ```
//!
//! Loading `RKB1` replays the triples through [`KbBuilder`] and produces
//! the CSR backend; inverse predicates are rebuilt at load time from the
//! caller's fraction.
//!
//! **`RKB2`** — the succinct section-table format:
//!
//! ```text
//! magic "RKB2" | flags u8
//! section table:    count, then (tag u8, offset u64, len u64)
//! NODES section:    front-coded node dictionary (with kind bytes)
//! PREDS section:    front-coded predicate dictionary (incl. inverses)
//! META section:     base-triple count + per-node frequencies
//! TRIPLES section:  the three BitmapTriples waves (SPO, OPS, SP), each a
//!                   packed key sequence + run bitmap + packed values
//! footer:           FNV-1a checksum of everything before it
//! ```
//!
//! The `RKB2` word payloads (packed sequences and bitmaps) load
//! *zero-copy*: the loader slices the input [`Bytes`] buffer and the
//! succinct backend reads little-endian words straight out of it. Inverse
//! predicates are baked into the file; loading with a non-zero inverse
//! fraction falls back to a rebuilding load only when the file holds no
//! materialised inverses.
//!
//! Keys are *front-coded* in both formats: each entry stores the length of
//! the prefix shared with its predecessor plus the differing suffix — the
//! classic dictionary compression used by HDT.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::io::{Read, Write};
use std::path::Path;

use crate::backend::{build_bitmap_triples, StoreBackend};
use crate::dict::Dictionary;
use crate::error::{KbError, Result};
use crate::freq::FreqVec;
use crate::ids::{NodeId, PredId};
use crate::store::{KbBuilder, KnowledgeBase};
use crate::succinct::{BitmapTriples, PackedSeq, RsBitVec, WaveIndex, WordSeq};
use crate::term::TermKind;
use crate::varint;

const MAGIC_V1: &[u8; 4] = b"RKB1";
const MAGIC_V2: &[u8; 4] = b"RKB2";

/// `RKB2` section tags.
const SEC_NODES: u8 = 1;
const SEC_PREDS: u8 = 2;
const SEC_META: u8 = 3;
const SEC_TRIPLES: u8 = 4;

/// `RKB2` flag bit: the file contains materialised inverse predicates.
const FLAG_HAS_INVERSES: u8 = 1;

/// On-disk format generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BinFormat {
    /// Row-oriented `RKB1` (loads into the CSR backend).
    #[default]
    Rkb1,
    /// Succinct section-table `RKB2` (loads zero-copy into the succinct
    /// backend).
    Rkb2,
}

impl BinFormat {
    /// Parses a format name (`rkb1` / `rkb2`).
    pub fn parse(s: &str) -> Option<BinFormat> {
        match s {
            "rkb1" => Some(BinFormat::Rkb1),
            "rkb2" => Some(BinFormat::Rkb2),
            _ => None,
        }
    }

    /// The canonical name.
    pub fn name(self) -> &'static str {
        match self {
            BinFormat::Rkb1 => "rkb1",
            BinFormat::Rkb2 => "rkb2",
        }
    }
}

fn kind_to_u8(k: TermKind) -> u8 {
    match k {
        TermKind::Iri => 0,
        TermKind::Literal => 1,
        TermKind::Blank => 2,
    }
}

fn kind_from_u8(b: u8) -> Result<TermKind> {
    match b {
        0 => Ok(TermKind::Iri),
        1 => Ok(TermKind::Literal),
        2 => Ok(TermKind::Blank),
        other => Err(KbError::Format(format!("bad term kind byte {other}"))),
    }
}

fn common_prefix_len(a: &str, b: &str) -> usize {
    let max = a.len().min(b.len());
    let (ab, bb) = (a.as_bytes(), b.as_bytes());
    let mut i = 0;
    while i < max && ab[i] == bb[i] {
        i += 1;
    }
    // Back off to a char boundary of b.
    while i > 0 && !b.is_char_boundary(i) {
        i -= 1;
    }
    i
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

/// Validates a file-derived element count against the bytes actually
/// available: each element consumes at least `min_bytes` of input, so a
/// larger count is malformed. Catching it here keeps hostile counts out
/// of `with_capacity` (which aborts, rather than unwinding, on overflow).
fn checked_count(n: u64, remaining: usize, min_bytes: usize) -> Result<usize> {
    let bound = remaining / min_bytes.max(1);
    if n > bound as u64 {
        return Err(KbError::Format(format!(
            "element count {n} overruns its section ({remaining} bytes left)"
        )));
    }
    Ok(n as usize)
}

/// Decodes one front-coded key given the previous key.
fn read_front_coded(buf: &mut impl Buf, prev: &str) -> Result<String> {
    let shared = varint::read_u64(buf)? as usize;
    if shared > prev.len() || !prev.is_char_boundary(shared) {
        return Err(KbError::Format("front-coding prefix overruns".into()));
    }
    let suffix = varint::read_str(buf)?;
    // lint:allow(unchecked-binfmt-alloc): `shared` is bounded by `prev.len()` above and `suffix` was length-checked by read_str — both components are already validated
    let mut key = String::with_capacity(shared + suffix.len());
    key.push_str(&prev[..shared]);
    key.push_str(&suffix);
    Ok(key)
}

/// Serialises a KB into `RKB1`. Only base triples are written; pass the
/// inverse-materialisation fraction to [`read_bytes`] to rebuild derived
/// facts at load time.
pub fn write_bytes(kb: &KnowledgeBase) -> Bytes {
    let mut out = BytesMut::with_capacity(1 << 16);
    out.put_slice(MAGIC_V1);
    out.put_u8(0); // flags, reserved

    // Node dictionary, front-coded in id order.
    varint::write_u64(&mut out, kb.num_nodes() as u64);
    let mut prev = String::new();
    for (_, key, kind) in kb.node_dict().iter() {
        out.put_u8(kind_to_u8(kind));
        let shared = common_prefix_len(&prev, key);
        varint::write_u64(&mut out, shared as u64);
        varint::write_str(&mut out, &key[shared..]);
        prev = key.to_string();
    }

    // Predicate dictionary — base predicates only (inverses are derived).
    let base_preds: Vec<PredId> = kb.pred_ids().filter(|&p| !kb.is_inverse(p)).collect();
    varint::write_u64(&mut out, base_preds.len() as u64);
    let mut prev = String::new();
    for &p in &base_preds {
        let key = kb.pred_iri(p);
        let shared = common_prefix_len(&prev, key);
        varint::write_u64(&mut out, shared as u64);
        varint::write_str(&mut out, &key[shared..]);
        prev = key.to_string();
    }

    // Triples per predicate, delta-encoded over (s, o).
    for &p in &base_preds {
        let idx = kb.index(p);
        varint::write_u64(&mut out, idx.num_facts() as u64);
        let mut last_s = 0u32;
        for (s, objs) in idx.iter_subjects() {
            for o in objs {
                // Gap on s; when the gap is 0 the o stream continues.
                varint::write_u32(&mut out, s.0 - last_s);
                varint::write_u32(&mut out, o);
                last_s = s.0;
            }
        }
    }

    let checksum = fnv1a(&out);
    out.put_u64_le(checksum);
    out.freeze()
}

fn write_packed(out: &mut BytesMut, seq: &PackedSeq) {
    out.put_u8(seq.width() as u8);
    varint::write_u64(out, seq.len() as u64);
    varint::write_u64(out, seq.words().len_words() as u64);
    seq.words().write_le(out);
}

fn write_bitvec(out: &mut BytesMut, bv: &RsBitVec) {
    varint::write_u64(out, bv.len() as u64);
    varint::write_u64(out, bv.words().len_words() as u64);
    bv.words().write_le(out);
}

fn write_wave(out: &mut BytesMut, wave: &WaveIndex) {
    let (key_bounds, val_bounds, keys, last, vals) = wave.parts();
    varint::write_u64(out, (key_bounds.len() - 1) as u64);
    for &b in key_bounds {
        varint::write_u32(out, b);
    }
    for &b in val_bounds {
        varint::write_u32(out, b);
    }
    write_packed(out, keys);
    write_bitvec(out, last);
    write_packed(out, vals);
}

/// Serialises a KB into the succinct `RKB2` format. All predicates —
/// including materialised inverses — are written, so the file loads
/// without any rebuilding.
pub fn write_bytes_v2(kb: &KnowledgeBase) -> Bytes {
    // Reuse the live succinct store when the KB already runs on it.
    let built;
    let triples: &BitmapTriples = match kb.store() {
        StoreBackend::Succinct(bt) => bt,
        other => {
            built = build_bitmap_triples(other, kb.num_nodes());
            &built
        }
    };

    // Section payloads.
    let mut nodes = BytesMut::new();
    varint::write_u64(&mut nodes, kb.num_nodes() as u64);
    let mut prev = String::new();
    for (_, key, kind) in kb.node_dict().iter() {
        nodes.put_u8(kind_to_u8(kind));
        let shared = common_prefix_len(&prev, key);
        varint::write_u64(&mut nodes, shared as u64);
        varint::write_str(&mut nodes, &key[shared..]);
        prev = key.to_string();
    }

    let mut preds = BytesMut::new();
    varint::write_u64(&mut preds, kb.num_preds() as u64);
    let mut prev = String::new();
    for (_, key, _) in kb.pred_dict().iter() {
        let shared = common_prefix_len(&prev, key);
        varint::write_u64(&mut preds, shared as u64);
        varint::write_str(&mut preds, &key[shared..]);
        prev = key.to_string();
    }

    let mut meta = BytesMut::new();
    varint::write_u64(&mut meta, kb.num_triples() as u64);
    varint::write_u64(&mut meta, kb.num_nodes() as u64);
    for n in kb.node_ids() {
        varint::write_u32(&mut meta, kb.node_frequency(n));
    }

    let mut waves = BytesMut::new();
    write_wave(&mut waves, triples.spo());
    write_wave(&mut waves, triples.ops());
    write_wave(&mut waves, triples.sp());

    // Assemble: header | section table | payloads | checksum.
    let has_inverses = kb.pred_ids().any(|p| kb.is_inverse(p));
    let sections: [(u8, &BytesMut); 4] = [
        (SEC_NODES, &nodes),
        (SEC_PREDS, &preds),
        (SEC_META, &meta),
        (SEC_TRIPLES, &waves),
    ];
    let header_len = MAGIC_V2.len() + 1 + 1 + sections.len() * 17;
    let mut out = BytesMut::with_capacity(
        header_len + sections.iter().map(|(_, s)| s.len()).sum::<usize>() + 8,
    );
    out.put_slice(MAGIC_V2);
    out.put_u8(if has_inverses { FLAG_HAS_INVERSES } else { 0 });
    out.put_u8(sections.len() as u8);
    let mut offset = header_len as u64;
    for (tag, payload) in &sections {
        out.put_u8(*tag);
        out.put_u64_le(offset);
        out.put_u64_le(payload.len() as u64);
        offset += payload.len() as u64;
    }
    for (_, payload) in &sections {
        out.put_slice(payload);
    }
    let checksum = fnv1a(&out);
    out.put_u64_le(checksum);
    out.freeze()
}

fn read_packed(cur: &mut Bytes) -> Result<PackedSeq> {
    if !cur.has_remaining() {
        return Err(KbError::Format("truncated packed sequence".into()));
    }
    let width = u32::from(cur.get_u8());
    if !(1..=32).contains(&width) {
        return Err(KbError::Format(format!("bad packed width {width}")));
    }
    let len = varint::read_u64(cur)?;
    let n_words = checked_count(varint::read_u64(cur)?, cur.remaining(), 8)?;
    let n_bytes = n_words * 8; // cannot overflow: n_words <= remaining/8
    if (n_words as u128) * 64 < (len as u128) * u128::from(width) {
        return Err(KbError::Format("truncated packed sequence".into()));
    }
    let len = len as usize;
    let words = cur.slice(..n_bytes);
    cur.advance(n_bytes);
    Ok(PackedSeq::from_words(WordSeq::Shared(words), width, len))
}

fn read_bitvec(cur: &mut Bytes) -> Result<RsBitVec> {
    let len_bits = varint::read_u64(cur)?;
    let n_words = checked_count(varint::read_u64(cur)?, cur.remaining(), 8)?;
    let n_bytes = n_words * 8; // cannot overflow: n_words <= remaining/8
    if (n_words as u128) * 64 < len_bits as u128 {
        return Err(KbError::Format("truncated bitmap".into()));
    }
    let len_bits = len_bits as usize;
    let words = cur.slice(..n_bytes);
    cur.advance(n_bytes);
    Ok(RsBitVec::from_words(WordSeq::Shared(words), len_bits))
}

fn read_wave(cur: &mut Bytes) -> Result<WaveIndex> {
    // Each group contributes at least one key-bound and one val-bound
    // varint byte.
    let n_groups = checked_count(varint::read_u64(cur)?, cur.remaining(), 2)?;
    // Bounds are validated after the sequences are known; read raw first.
    let mut raw_key_bounds = Vec::with_capacity(n_groups + 1);
    for _ in 0..=n_groups {
        raw_key_bounds.push(varint::read_u32(cur)?);
    }
    let mut raw_val_bounds = Vec::with_capacity(n_groups + 1);
    for _ in 0..=n_groups {
        raw_val_bounds.push(varint::read_u32(cur)?);
    }
    let keys = read_packed(cur)?;
    let last = read_bitvec(cur)?;
    let vals = read_packed(cur)?;
    let check = |bounds: &[u32], last_val: usize| -> Result<()> {
        let monotone = bounds.windows(2).all(|w| w[0] <= w[1]);
        if bounds.first() != Some(&0) || !monotone || bounds.last() != Some(&(last_val as u32)) {
            return Err(KbError::Format("inconsistent wave bounds".into()));
        }
        Ok(())
    };
    check(&raw_key_bounds, keys.len())?;
    check(&raw_val_bounds, vals.len())?;
    if last.len() != vals.len() || last.count_ones() != keys.len() {
        return Err(KbError::Format(
            "wave bitmap disagrees with sequences".into(),
        ));
    }
    Ok(WaveIndex::from_parts(
        raw_key_bounds,
        raw_val_bounds,
        keys,
        last,
        vals,
    ))
}

/// Locates an `RKB2` section by tag.
fn section(table: &[(u8, u64, u64)], tag: u8, body: &Bytes) -> Result<Bytes> {
    let &(_, off, len) = table
        .iter()
        .find(|&&(t, _, _)| t == tag)
        .ok_or_else(|| KbError::Format(format!("missing section {tag}")))?;
    // Checked arithmetic: a crafted table with offset near u64::MAX must
    // not wrap past the bounds test.
    let end = off
        .checked_add(len)
        .filter(|&e| e <= body.len() as u64)
        .ok_or_else(|| KbError::Format("section extends past file body".into()))?;
    Ok(body.slice(off as usize..end as usize))
}

/// Loads an `RKB2` body (already checksum-verified, magic consumed by the
/// caller's offset bookkeeping) into a succinct-backed KB.
fn read_v2(body: &Bytes, inverse_fraction: f64) -> Result<KnowledgeBase> {
    let mut header = body.slice(MAGIC_V2.len()..);
    if header.remaining() < 2 {
        return Err(KbError::Format("truncated RKB2 header".into()));
    }
    let flags = header.get_u8();
    let n_sections = header.get_u8() as usize;
    if header.remaining() < n_sections * 17 {
        return Err(KbError::Format("truncated section table".into()));
    }
    // lint:allow(unchecked-binfmt-alloc): `n_sections` comes from a single u8, so the allocation is at most 255 entries
    let mut table = Vec::with_capacity(n_sections);
    for _ in 0..n_sections {
        let tag = header.get_u8();
        let off = header.get_u64_le();
        let len = header.get_u64_le();
        table.push((tag, off, len));
    }

    // Dictionaries.
    let mut nodes_sec = section(&table, SEC_NODES, body)?;
    // Each entry holds a kind byte plus two front-coding varints.
    let n_nodes = checked_count(varint::read_u64(&mut nodes_sec)?, nodes_sec.remaining(), 3)?;
    let mut nodes = Dictionary::with_capacity(n_nodes);
    let mut prev = String::new();
    for _ in 0..n_nodes {
        if !nodes_sec.has_remaining() {
            return Err(KbError::Format("truncated node dictionary".into()));
        }
        let kind = kind_from_u8(nodes_sec.get_u8())?;
        let key = read_front_coded(&mut nodes_sec, &prev)?;
        nodes.intern_key(&key, kind);
        prev = key;
    }
    if nodes.len() != n_nodes {
        return Err(KbError::Format("duplicate node dictionary entries".into()));
    }

    let mut preds_sec = section(&table, SEC_PREDS, body)?;
    let n_preds = checked_count(varint::read_u64(&mut preds_sec)?, preds_sec.remaining(), 2)?;
    let mut preds = Dictionary::with_capacity(n_preds);
    let mut prev = String::new();
    for _ in 0..n_preds {
        let key = read_front_coded(&mut preds_sec, &prev)?;
        preds.intern_key(&key, TermKind::Iri);
        prev = key;
    }
    if preds.len() != n_preds {
        return Err(KbError::Format(
            "duplicate predicate dictionary entries".into(),
        ));
    }

    // Metadata.
    let mut meta_sec = section(&table, SEC_META, body)?;
    let n_base = varint::read_u64(&mut meta_sec)? as usize;
    let n_freq = varint::read_u64(&mut meta_sec)? as usize;
    if n_freq != n_nodes {
        return Err(KbError::Format("frequency table length mismatch".into()));
    }
    let mut node_freq = Vec::with_capacity(n_nodes);
    for _ in 0..n_freq {
        node_freq.push(varint::read_u32(&mut meta_sec)?);
    }

    // The succinct payload — zero-copy over the shared body buffer.
    let mut waves_sec = section(&table, SEC_TRIPLES, body)?;
    let spo = read_wave(&mut waves_sec)?;
    let ops = read_wave(&mut waves_sec)?;
    let sp = read_wave(&mut waves_sec)?;
    if spo.num_groups() != n_preds || ops.num_groups() != n_preds {
        return Err(KbError::Format(
            "wave predicate count disagrees with dictionary".into(),
        ));
    }
    let store = StoreBackend::Succinct(BitmapTriples::from_waves(spo, ops, sp));

    let kb = KnowledgeBase::from_parts(nodes, preds, store, FreqVec::from_vec(node_freq), n_base);

    // The file bakes its inverse predicates. Only when the caller asks for
    // inverses and the file has none do we fall back to a rebuilding load.
    if inverse_fraction > 0.0 && flags & FLAG_HAS_INVERSES == 0 {
        let mut b = KbBuilder::new();
        for n in kb.node_ids() {
            b.node(&kb.node_term(n));
        }
        for p in kb.pred_ids() {
            b.pred(kb.pred_iri(p));
        }
        for t in kb.iter_triples() {
            b.add_ids(t.s, t.p, t.o);
        }
        return Ok(b
            .build_with_inverses(inverse_fraction)?
            .with_backend(crate::backend::Backend::Succinct));
    }
    Ok(kb)
}

/// Deserialises a KB from a shared buffer, rebuilding inverse predicates
/// for the top `inverse_fraction` most frequent entities where the format
/// calls for it (`RKB1` always; `RKB2` only when the file holds none).
///
/// For `RKB2` input the succinct payload is *not* copied: the returned
/// KB's packed sequences and bitmaps read directly from `bytes`.
pub fn read_shared(bytes: &Bytes, inverse_fraction: f64) -> Result<KnowledgeBase> {
    if bytes.len() < MAGIC_V1.len() + 8 {
        return Err(KbError::Format("file too short".into()));
    }
    let body_len = bytes.len() - 8;
    let stored = u64::from_le_bytes(bytes[body_len..].try_into().expect("footer is 8 bytes"));
    if fnv1a(&bytes[..body_len]) != stored {
        return Err(KbError::Format("checksum mismatch".into()));
    }
    let body = bytes.slice(..body_len);
    match &body[..4] {
        m if m == &MAGIC_V1[..] => read_v1(&body, inverse_fraction),
        m if m == &MAGIC_V2[..] => read_v2(&body, inverse_fraction),
        _ => Err(KbError::Format("bad magic".into())),
    }
}

/// Deserialises a KB from bytes (copies `RKB2` payloads into a fresh
/// buffer; prefer [`read_shared`] for zero-copy loads).
pub fn read_bytes(bytes: &[u8], inverse_fraction: f64) -> Result<KnowledgeBase> {
    read_shared(&Bytes::copy_from_slice(bytes), inverse_fraction)
}

fn read_v1(body: &Bytes, inverse_fraction: f64) -> Result<KnowledgeBase> {
    let mut buf = body.slice(MAGIC_V1.len()..);
    let _flags = buf.get_u8();

    let mut builder = KbBuilder::new();

    // Node dictionary (kind byte + two front-coding varints per entry).
    let n_nodes = checked_count(varint::read_u64(&mut buf)?, buf.remaining(), 3)?;
    let mut node_ids = Vec::with_capacity(n_nodes);
    let mut prev = String::new();
    for _ in 0..n_nodes {
        if !buf.has_remaining() {
            return Err(KbError::Format("truncated node dictionary".into()));
        }
        let kind = kind_from_u8(buf.get_u8())?;
        let key = read_front_coded(&mut buf, &prev)?;
        let term = crate::term::Term::from_dict_key(&key);
        if term.kind() != kind {
            return Err(KbError::Format(format!(
                "kind byte disagrees with key encoding for {key:?}"
            )));
        }
        node_ids.push(builder.node(&term));
        prev = key;
    }

    // Predicate dictionary.
    let n_preds = checked_count(varint::read_u64(&mut buf)?, buf.remaining(), 2)?;
    let mut pred_ids = Vec::with_capacity(n_preds);
    let mut prev = String::new();
    for _ in 0..n_preds {
        let key = read_front_coded(&mut buf, &prev)?;
        pred_ids.push(builder.pred(&key));
        prev = key;
    }

    // Triples.
    for &p in &pred_ids {
        let n_facts = varint::read_u64(&mut buf)? as usize;
        let mut last_s = 0u32;
        for _ in 0..n_facts {
            let gap = varint::read_u32(&mut buf)?;
            let o = varint::read_u32(&mut buf)?;
            let s = last_s + gap;
            last_s = s;
            let valid = (s as usize) < node_ids.len() && (o as usize) < node_ids.len();
            if !valid {
                return Err(KbError::Format("triple id out of range".into()));
            }
            builder.add_ids(NodeId(s), p, NodeId(o));
        }
    }
    if buf.has_remaining() {
        return Err(KbError::Format(
            "trailing bytes after triple section".into(),
        ));
    }

    builder.build_with_inverses(inverse_fraction)
}

/// Writes a KB to a file in the given format.
pub fn save_as(kb: &KnowledgeBase, path: impl AsRef<Path>, format: BinFormat) -> Result<()> {
    let bytes = match format {
        BinFormat::Rkb1 => write_bytes(kb),
        BinFormat::Rkb2 => write_bytes_v2(kb),
    };
    let mut f = std::fs::File::create(path)?;
    f.write_all(&bytes)?;
    Ok(())
}

/// Writes a KB to a file (`RKB1`).
pub fn save(kb: &KnowledgeBase, path: impl AsRef<Path>) -> Result<()> {
    save_as(kb, path, BinFormat::Rkb1)
}

/// Loads a KB from a file, sniffing the format from its magic. `RKB2`
/// payloads stay zero-copy views of the (shared) file buffer.
pub fn load(path: impl AsRef<Path>, inverse_fraction: f64) -> Result<KnowledgeBase> {
    let mut f = std::fs::File::open(path)?;
    let mut bytes = Vec::new();
    f.read_to_end(&mut bytes)?;
    read_shared(&Bytes::from(bytes), inverse_fraction)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::Backend;
    use crate::term::Term;

    fn sample_kb() -> KnowledgeBase {
        let mut b = KbBuilder::new();
        b.add_iri("http://x/Paris", "http://x/capitalOf", "http://x/France");
        b.add_iri("http://x/Paris", "http://x/cityIn", "http://x/France");
        b.add_iri("http://x/Lyon", "http://x/cityIn", "http://x/France");
        b.add(
            &Term::iri("http://x/Paris"),
            "http://x/label",
            &Term::lang_literal("Paris", "fr"),
        );
        b.add(
            &Term::blank("b0"),
            "http://x/near",
            &Term::iri("http://x/Paris"),
        );
        b.build().unwrap()
    }

    fn kb_lines(kb: &KnowledgeBase) -> std::collections::BTreeSet<String> {
        let mut v = Vec::new();
        crate::ntriples::write_kb(kb, &mut v).unwrap();
        String::from_utf8(v)
            .unwrap()
            .lines()
            .map(String::from)
            .collect()
    }

    #[test]
    fn roundtrip_preserves_triples() {
        let kb = sample_kb();
        let bytes = write_bytes(&kb);
        let kb2 = read_bytes(&bytes, 0.0).unwrap();
        assert_eq!(kb2.num_triples(), kb.num_triples());
        assert_eq!(kb_lines(&kb), kb_lines(&kb2));
    }

    #[test]
    fn v2_roundtrip_preserves_triples_and_loads_succinct() {
        let kb = sample_kb();
        let bytes = write_bytes_v2(&kb);
        let kb2 = read_bytes(&bytes, 0.0).unwrap();
        assert_eq!(kb2.backend(), Backend::Succinct);
        assert_eq!(kb2.num_triples(), kb.num_triples());
        assert_eq!(kb_lines(&kb), kb_lines(&kb2));
        // Statistics survive the format hop.
        for p in kb.pred_ids() {
            let p2 = kb2.pred_id(kb.pred_iri(p)).unwrap();
            assert_eq!(kb.pred_frequency(p), kb2.pred_frequency(p2));
        }
    }

    #[test]
    fn v2_roundtrip_from_succinct_backend() {
        let kb = sample_kb().with_backend(Backend::Succinct);
        let bytes = write_bytes_v2(&kb);
        let kb2 = read_bytes(&bytes, 0.0).unwrap();
        assert_eq!(kb_lines(&kb), kb_lines(&kb2));
    }

    #[test]
    fn v2_bakes_inverses_and_skips_rebuild() {
        let mut b = KbBuilder::new();
        for city in ["a", "b", "c", "d"] {
            b.add_iri(&format!("e:{city}"), "p:cityIn", "e:France");
        }
        let kb = b.build_with_inverses(0.25).unwrap();
        let bytes = write_bytes_v2(&kb);
        // Loading with any fraction keeps the baked inverses.
        let kb2 = read_bytes(&bytes, 0.9).unwrap();
        let inv_iri = format!("p:cityIn{}", crate::store::INVERSE_SUFFIX);
        assert!(kb2.pred_id(&inv_iri).is_some());
        assert_eq!(
            kb2.num_triples_with_inverses(),
            kb.num_triples_with_inverses()
        );
    }

    #[test]
    fn v2_without_inverses_rebuilds_on_request() {
        let mut b = KbBuilder::new();
        for city in ["a", "b", "c", "d"] {
            b.add_iri(&format!("e:{city}"), "p:cityIn", "e:France");
        }
        let kb = b.build().unwrap();
        let bytes = write_bytes_v2(&kb);
        let kb2 = read_bytes(&bytes, 0.25).unwrap();
        let inv_iri = format!("p:cityIn{}", crate::store::INVERSE_SUFFIX);
        assert!(kb2.pred_id(&inv_iri).is_some());
        assert_eq!(kb2.backend(), Backend::Succinct);
    }

    #[test]
    fn v2_load_is_zero_copy_for_wave_payloads() {
        let kb = sample_kb();
        let bytes = write_bytes_v2(&kb);
        let shared = Bytes::copy_from_slice(&bytes);
        let kb2 = read_shared(&shared, 0.0).unwrap();
        let StoreBackend::Succinct(bt) = kb2.store() else {
            panic!("RKB2 must load succinct");
        };
        // The packed value stream must reference the shared buffer, not an
        // owned copy.
        assert!(matches!(
            bt.spo().vals().words(),
            crate::succinct::WordSeq::Shared(_)
        ));
    }

    #[test]
    fn corruption_is_detected() {
        let kb = sample_kb();
        for bytes in [write_bytes(&kb).to_vec(), write_bytes_v2(&kb).to_vec()] {
            let mut bytes = bytes;
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0xff;
            assert!(matches!(
                read_bytes(&bytes, 0.0),
                Err(KbError::Format(msg)) if msg.contains("checksum")
            ));
        }
    }

    #[test]
    fn truncation_is_detected() {
        let kb = sample_kb();
        for bytes in [write_bytes(&kb), write_bytes_v2(&kb)] {
            assert!(read_bytes(&bytes[..bytes.len() - 9], 0.0).is_err());
            assert!(read_bytes(&bytes[..4], 0.0).is_err());
        }
        assert!(read_bytes(&[], 0.0).is_err());
    }

    /// Re-checksums a mutated RKB2 body so crafted-input tests reach the
    /// parser instead of the checksum gate.
    fn reseal(mut bytes: Vec<u8>) -> Vec<u8> {
        let body_len = bytes.len() - 8;
        let sum = fnv1a(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&sum.to_le_bytes());
        bytes
    }

    /// Hostile element counts must error before reaching `with_capacity`
    /// (which aborts, not unwinds, on capacity overflow).
    #[test]
    fn crafted_huge_counts_error_instead_of_aborting() {
        // RKB1 whose node-count varint claims u64::MAX entries.
        let mut bytes = BytesMut::new();
        bytes.put_slice(MAGIC_V1);
        bytes.put_u8(0); // flags
        varint::write_u64(&mut bytes, u64::MAX);
        let mut bytes = bytes.to_vec();
        bytes.extend_from_slice(&[0u8; 8]); // checksum placeholder
        assert!(matches!(
            read_bytes(&reseal(bytes), 0.0),
            Err(KbError::Format(msg)) if msg.contains("overruns")
        ));

        // Packed sequence / bitmap with a word count far beyond the
        // remaining bytes, and one whose capacity cannot hold its length.
        let mut raw = BytesMut::new();
        raw.put_u8(8); // width
        varint::write_u64(&mut raw, 4);
        varint::write_u64(&mut raw, u64::MAX); // n_words
        assert!(read_packed(&mut raw.freeze()).is_err());

        let mut raw = BytesMut::new();
        raw.put_u8(8); // width
        varint::write_u64(&mut raw, u64::MAX); // len: needs 2^64 values
        varint::write_u64(&mut raw, 1); // ...in one word
        raw.put_u64_le(0);
        assert!(read_packed(&mut raw.freeze()).is_err());

        let mut raw = BytesMut::new();
        varint::write_u64(&mut raw, u64::MAX); // len_bits
        varint::write_u64(&mut raw, 1); // n_words
        raw.put_u64_le(0);
        assert!(read_bitvec(&mut raw.freeze()).is_err());
    }

    /// A shared-prefix length that splits a multibyte character must be
    /// rejected, not panic on the slice.
    #[test]
    fn front_coding_respects_char_boundaries() {
        let mut raw = BytesMut::new();
        varint::write_u64(&mut raw, 1); // shared: splits the 2-byte 'é'
        varint::write_str(&mut raw, "x");
        assert!(matches!(
            read_front_coded(&mut raw.freeze(), "é"),
            Err(KbError::Format(msg)) if msg.contains("prefix overruns")
        ));
    }

    #[test]
    fn v2_crafted_section_offsets_error_instead_of_panicking() {
        let kb = sample_kb();
        let mut bytes = write_bytes_v2(&kb).to_vec();
        // First table entry starts right after magic+flags+count; poison
        // its offset with u64::MAX (wraps `off + len` if unchecked).
        let entry = MAGIC_V2.len() + 2 + 1;
        bytes[entry..entry + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            read_bytes(&reseal(bytes), 0.0),
            Err(KbError::Format(msg)) if msg.contains("section")
        ));
    }

    #[test]
    fn v2_checksummed_but_headerless_file_errors() {
        // Exactly magic + a valid checksum: no flags or section count.
        let bytes = reseal(b"RKB2\0\0\0\0\0\0\0\0".to_vec());
        assert!(matches!(
            read_bytes(&bytes, 0.0),
            Err(KbError::Format(msg)) if msg.contains("truncated")
        ));
    }

    #[test]
    fn bad_magic_is_detected() {
        let kb = sample_kb();
        let mut bytes = write_bytes(&kb).to_vec();
        bytes[0] = b'X';
        // Fix up the checksum so we actually reach the magic check.
        let body_len = bytes.len() - 8;
        let sum = fnv1a(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            read_bytes(&bytes, 0.0),
            Err(KbError::Format(msg)) if msg.contains("magic")
        ));
    }

    #[test]
    fn file_roundtrip_both_formats() {
        let kb = sample_kb();
        let dir = std::env::temp_dir().join("remi_kb_binfmt_test");
        std::fs::create_dir_all(&dir).unwrap();
        for (name, format) in [
            ("sample.rkb", BinFormat::Rkb1),
            ("sample.rkb2", BinFormat::Rkb2),
        ] {
            let path = dir.join(name);
            save_as(&kb, &path, format).unwrap();
            let kb2 = load(&path, 0.0).unwrap();
            assert_eq!(kb_lines(&kb), kb_lines(&kb2), "{name}");
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn format_names_roundtrip() {
        for f in [BinFormat::Rkb1, BinFormat::Rkb2] {
            assert_eq!(BinFormat::parse(f.name()), Some(f));
        }
        assert_eq!(BinFormat::parse("hdt"), None);
    }

    #[test]
    fn compression_beats_ntriples_on_shared_prefixes() {
        let mut b = KbBuilder::new();
        for i in 0..500 {
            b.add_iri(
                &format!("http://very.long.example.org/resource/Entity{i}"),
                "http://very.long.example.org/ontology/linksTo",
                &format!("http://very.long.example.org/resource/Entity{}", i / 2),
            );
        }
        let kb = b.build().unwrap();
        let bin = write_bytes(&kb).len();
        let mut nt = Vec::new();
        crate::ntriples::write_kb(&kb, &mut nt).unwrap();
        assert!(
            bin * 2 < nt.len(),
            "binary ({bin}) should be at most half of N-Triples ({})",
            nt.len()
        );
    }

    #[test]
    fn front_coding_handles_unicode_boundaries() {
        let mut b = KbBuilder::new();
        b.add_iri("e:caf", "p:r", "e:x");
        b.add_iri("e:café", "p:r", "e:x");
        b.add_iri("e:cafés", "p:r", "e:x");
        let kb = b.build().unwrap();
        for bytes in [write_bytes(&kb), write_bytes_v2(&kb)] {
            let kb2 = read_bytes(&bytes, 0.0).unwrap();
            assert_eq!(kb_lines(&kb), kb_lines(&kb2));
        }
    }
}
