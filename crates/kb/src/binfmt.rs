//! An HDT-like compressed binary format for knowledge bases.
//!
//! The paper stores its KBs as HDT files: a binary, dictionary-compressed
//! representation that supports atom-level retrieval without full
//! decompression (§3.5.1). This module implements the same idea, tuned to
//! our store layout:
//!
//! ```text
//! magic "RKB1" | flags u8
//! node dictionary:  count, then (kind u8, front-coded key)
//! pred dictionary:  count, then front-coded IRI
//! triple section:   per predicate: fact count, delta-encoded (s, o) runs
//! footer:           FNV-1a checksum of everything before it
//! ```
//!
//! Keys are *front-coded*: each entry stores the length of the prefix shared
//! with its predecessor plus the differing suffix — the classic dictionary
//! compression used by HDT. Triples are stored sorted by `(s, o)` per
//! predicate with LEB128 gap encoding, so loading rebuilds CSR indexes
//! directly.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::io::{Read, Write};
use std::path::Path;

use crate::error::{KbError, Result};
use crate::ids::{NodeId, PredId};
use crate::store::{KbBuilder, KnowledgeBase};
use crate::term::TermKind;
use crate::varint;

const MAGIC: &[u8; 4] = b"RKB1";

fn kind_to_u8(k: TermKind) -> u8 {
    match k {
        TermKind::Iri => 0,
        TermKind::Literal => 1,
        TermKind::Blank => 2,
    }
}

fn kind_from_u8(b: u8) -> Result<TermKind> {
    match b {
        0 => Ok(TermKind::Iri),
        1 => Ok(TermKind::Literal),
        2 => Ok(TermKind::Blank),
        other => Err(KbError::Format(format!("bad term kind byte {other}"))),
    }
}

fn common_prefix_len(a: &str, b: &str) -> usize {
    let max = a.len().min(b.len());
    let (ab, bb) = (a.as_bytes(), b.as_bytes());
    let mut i = 0;
    while i < max && ab[i] == bb[i] {
        i += 1;
    }
    // Back off to a char boundary of b.
    while i > 0 && !b.is_char_boundary(i) {
        i -= 1;
    }
    i
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

/// Serialises a KB into the binary format. Only base triples are written;
/// pass the inverse-materialisation fraction to [`read_bytes`] to rebuild
/// derived facts at load time.
pub fn write_bytes(kb: &KnowledgeBase) -> Bytes {
    let mut out = BytesMut::with_capacity(1 << 16);
    out.put_slice(MAGIC);
    out.put_u8(0); // flags, reserved

    // Node dictionary, front-coded in id order.
    varint::write_u64(&mut out, kb.num_nodes() as u64);
    let mut prev = String::new();
    for (_, key, kind) in kb.node_dict().iter() {
        out.put_u8(kind_to_u8(kind));
        let shared = common_prefix_len(&prev, key);
        varint::write_u64(&mut out, shared as u64);
        varint::write_str(&mut out, &key[shared..]);
        prev = key.to_string();
    }

    // Predicate dictionary — base predicates only (inverses are derived).
    let base_preds: Vec<PredId> = kb.pred_ids().filter(|&p| !kb.is_inverse(p)).collect();
    varint::write_u64(&mut out, base_preds.len() as u64);
    let mut prev = String::new();
    for &p in &base_preds {
        let key = kb.pred_iri(p);
        let shared = common_prefix_len(&prev, key);
        varint::write_u64(&mut out, shared as u64);
        varint::write_str(&mut out, &key[shared..]);
        prev = key.to_string();
    }

    // Triples per predicate, delta-encoded over (s, o).
    for &p in &base_preds {
        let idx = kb.index(p);
        varint::write_u64(&mut out, idx.num_facts() as u64);
        let mut last_s = 0u32;
        for (s, objs) in idx.iter_subjects() {
            for &o in objs {
                // Gap on s; when the gap is 0 the o stream continues.
                varint::write_u32(&mut out, s.0 - last_s);
                varint::write_u32(&mut out, o);
                last_s = s.0;
            }
        }
    }

    let checksum = fnv1a(&out);
    out.put_u64_le(checksum);
    out.freeze()
}

/// Deserialises a KB from bytes, rebuilding inverse predicates for the top
/// `inverse_fraction` most frequent entities (pass `0.0` for none).
pub fn read_bytes(bytes: &[u8], inverse_fraction: f64) -> Result<KnowledgeBase> {
    if bytes.len() < MAGIC.len() + 8 {
        return Err(KbError::Format("file too short".into()));
    }
    let (body, footer) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(footer.try_into().expect("footer is 8 bytes"));
    if fnv1a(body) != stored {
        return Err(KbError::Format("checksum mismatch".into()));
    }

    let mut buf = body;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(KbError::Format("bad magic".into()));
    }
    let _flags = buf.get_u8();

    let mut builder = KbBuilder::new();

    // Node dictionary.
    let n_nodes = varint::read_u64(&mut buf)? as usize;
    let mut node_ids = Vec::with_capacity(n_nodes);
    let mut prev = String::new();
    for _ in 0..n_nodes {
        if !buf.has_remaining() {
            return Err(KbError::Format("truncated node dictionary".into()));
        }
        let kind = kind_from_u8(buf.get_u8())?;
        let shared = varint::read_u64(&mut buf)? as usize;
        if shared > prev.len() {
            return Err(KbError::Format("front-coding prefix overruns".into()));
        }
        let suffix = varint::read_str(&mut buf)?;
        let mut key = String::with_capacity(shared + suffix.len());
        key.push_str(&prev[..shared]);
        key.push_str(&suffix);
        let term = crate::term::Term::from_dict_key(&key);
        if term.kind() != kind {
            return Err(KbError::Format(format!(
                "kind byte disagrees with key encoding for {key:?}"
            )));
        }
        node_ids.push(builder.node(&term));
        prev = key;
    }

    // Predicate dictionary.
    let n_preds = varint::read_u64(&mut buf)? as usize;
    let mut pred_ids = Vec::with_capacity(n_preds);
    let mut prev = String::new();
    for _ in 0..n_preds {
        let shared = varint::read_u64(&mut buf)? as usize;
        if shared > prev.len() {
            return Err(KbError::Format("front-coding prefix overruns".into()));
        }
        let suffix = varint::read_str(&mut buf)?;
        let mut key = String::with_capacity(shared + suffix.len());
        key.push_str(&prev[..shared]);
        key.push_str(&suffix);
        pred_ids.push(builder.pred(&key));
        prev = key;
    }

    // Triples.
    for &p in &pred_ids {
        let n_facts = varint::read_u64(&mut buf)? as usize;
        let mut last_s = 0u32;
        for _ in 0..n_facts {
            let gap = varint::read_u32(&mut buf)?;
            let o = varint::read_u32(&mut buf)?;
            let s = last_s + gap;
            last_s = s;
            let valid = (s as usize) < node_ids.len() && (o as usize) < node_ids.len();
            if !valid {
                return Err(KbError::Format("triple id out of range".into()));
            }
            builder.add_ids(NodeId(s), p, NodeId(o));
        }
    }
    if buf.has_remaining() {
        return Err(KbError::Format(
            "trailing bytes after triple section".into(),
        ));
    }

    builder.build_with_inverses(inverse_fraction)
}

/// Writes a KB to a file.
pub fn save(kb: &KnowledgeBase, path: impl AsRef<Path>) -> Result<()> {
    let bytes = write_bytes(kb);
    let mut f = std::fs::File::create(path)?;
    f.write_all(&bytes)?;
    Ok(())
}

/// Loads a KB from a file.
pub fn load(path: impl AsRef<Path>, inverse_fraction: f64) -> Result<KnowledgeBase> {
    let mut f = std::fs::File::open(path)?;
    let mut bytes = Vec::new();
    f.read_to_end(&mut bytes)?;
    read_bytes(&bytes, inverse_fraction)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    fn sample_kb() -> KnowledgeBase {
        let mut b = KbBuilder::new();
        b.add_iri("http://x/Paris", "http://x/capitalOf", "http://x/France");
        b.add_iri("http://x/Paris", "http://x/cityIn", "http://x/France");
        b.add_iri("http://x/Lyon", "http://x/cityIn", "http://x/France");
        b.add(
            &Term::iri("http://x/Paris"),
            "http://x/label",
            &Term::lang_literal("Paris", "fr"),
        );
        b.add(
            &Term::blank("b0"),
            "http://x/near",
            &Term::iri("http://x/Paris"),
        );
        b.build().unwrap()
    }

    fn kb_lines(kb: &KnowledgeBase) -> std::collections::BTreeSet<String> {
        let mut v = Vec::new();
        crate::ntriples::write_kb(kb, &mut v).unwrap();
        String::from_utf8(v)
            .unwrap()
            .lines()
            .map(String::from)
            .collect()
    }

    #[test]
    fn roundtrip_preserves_triples() {
        let kb = sample_kb();
        let bytes = write_bytes(&kb);
        let kb2 = read_bytes(&bytes, 0.0).unwrap();
        assert_eq!(kb2.num_triples(), kb.num_triples());
        assert_eq!(kb_lines(&kb), kb_lines(&kb2));
    }

    #[test]
    fn roundtrip_with_inverse_rebuild() {
        let mut b = KbBuilder::new();
        for city in ["a", "b", "c", "d"] {
            b.add_iri(&format!("e:{city}"), "p:cityIn", "e:France");
        }
        let kb = b.build_with_inverses(0.25).unwrap();
        let bytes = write_bytes(&kb);
        let kb2 = read_bytes(&bytes, 0.25).unwrap();
        // Inverse predicate is reconstructed.
        let inv_iri = format!("p:cityIn{}", crate::store::INVERSE_SUFFIX);
        assert!(kb2.pred_id(&inv_iri).is_some());
        assert_eq!(
            kb2.num_triples_with_inverses(),
            kb.num_triples_with_inverses()
        );
    }

    #[test]
    fn corruption_is_detected() {
        let kb = sample_kb();
        let mut bytes = write_bytes(&kb).to_vec();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        assert!(matches!(
            read_bytes(&bytes, 0.0),
            Err(KbError::Format(msg)) if msg.contains("checksum")
        ));
    }

    #[test]
    fn truncation_is_detected() {
        let kb = sample_kb();
        let bytes = write_bytes(&kb);
        assert!(read_bytes(&bytes[..bytes.len() - 9], 0.0).is_err());
        assert!(read_bytes(&bytes[..4], 0.0).is_err());
        assert!(read_bytes(&[], 0.0).is_err());
    }

    #[test]
    fn bad_magic_is_detected() {
        let kb = sample_kb();
        let mut bytes = write_bytes(&kb).to_vec();
        bytes[0] = b'X';
        // Fix up the checksum so we actually reach the magic check.
        let body_len = bytes.len() - 8;
        let sum = fnv1a(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            read_bytes(&bytes, 0.0),
            Err(KbError::Format(msg)) if msg.contains("magic")
        ));
    }

    #[test]
    fn file_roundtrip() {
        let kb = sample_kb();
        let dir = std::env::temp_dir().join("remi_kb_binfmt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.rkb");
        save(&kb, &path).unwrap();
        let kb2 = load(&path, 0.0).unwrap();
        assert_eq!(kb_lines(&kb), kb_lines(&kb2));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compression_beats_ntriples_on_shared_prefixes() {
        let mut b = KbBuilder::new();
        for i in 0..500 {
            b.add_iri(
                &format!("http://very.long.example.org/resource/Entity{i}"),
                "http://very.long.example.org/ontology/linksTo",
                &format!("http://very.long.example.org/resource/Entity{}", i / 2),
            );
        }
        let kb = b.build().unwrap();
        let bin = write_bytes(&kb).len();
        let mut nt = Vec::new();
        crate::ntriples::write_kb(&kb, &mut nt).unwrap();
        assert!(
            bin * 2 < nt.len(),
            "binary ({bin}) should be at most half of N-Triples ({})",
            nt.len()
        );
    }

    #[test]
    fn front_coding_handles_unicode_boundaries() {
        let mut b = KbBuilder::new();
        b.add_iri("e:caf", "p:r", "e:x");
        b.add_iri("e:café", "p:r", "e:x");
        b.add_iri("e:cafés", "p:r", "e:x");
        let kb = b.build().unwrap();
        let bytes = write_bytes(&kb);
        let kb2 = read_bytes(&bytes, 0.0).unwrap();
        assert_eq!(kb_lines(&kb), kb_lines(&kb2));
    }
}
