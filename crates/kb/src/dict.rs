//! String-interning dictionary mapping terms to dense `u32` ids, stored as
//! persistent, chunked immutable segments.
//!
//! # Segmented layout
//!
//! Ids are split into fixed-size ranges of [`Dictionary::SEGMENT_LEN`]
//! entries. Every full range lives in a *sealed* [`DictSegment`] behind an
//! `Arc`; only the most recent partial range (the *tail*) is a plain
//! mutable `Vec`. The interning map mirrors the split: a frozen
//! `Arc<FxHashMap>` covers exactly the sealed ids, and a small side map
//! covers the tail.
//!
//! The payoff is persistence: `Dictionary::clone` is an `Arc`-bump per
//! sealed segment plus a copy of the (≤ `SEGMENT_LEN`-entry) tail, so
//! cloning is **O(len / SEGMENT_LEN + SEGMENT_LEN)** instead of O(len).
//! This is what makes `LiveKb` epoch publishes O(batch): every snapshot
//! shares all sealed segments — and the frozen map — with the writer and
//! with every other snapshot. Sealing (which folds the tail into the
//! frozen map via `Arc::make_mut`, copying it if snapshots still hold it)
//! happens once per `SEGMENT_LEN` interns, so its cost amortises to
//! O(len / SEGMENT_LEN) per key and the *median* publish never touches a
//! sealed structure at all.
//!
//! Every node and predicate string is still stored exactly once — and
//! allocated exactly once: the hash-map key and the id-indexed entry share
//! one `Arc<str>`, so string-heavy KBs pay one heap string per distinct
//! term instead of two. Lookups by id are two flat indexes (segment, then
//! offset); lookups by key probe the frozen map, then the tail map.

use std::sync::Arc;

use crate::fx::FxHashMap;
use crate::term::{Term, TermKind};

/// An interning dictionary for term strings.
///
/// Keys are canonical term encodings (see [`Term::dict_key`]). The kind of
/// each term is stored alongside so hot paths can test "is this a literal?"
/// without reparsing the string. See the module docs for the persistent
/// segmented layout that makes `clone` cheap.
#[derive(Debug, Default, Clone)]
pub struct Dictionary {
    /// Sealed segments of exactly [`Self::SEGMENT_LEN`] entries each;
    /// segment `s` holds ids `s * SEGMENT_LEN ..`.
    sealed: Vec<Arc<DictSegment>>,
    /// The mutable tail: ids `sealed.len() * SEGMENT_LEN ..`, fewer than
    /// `SEGMENT_LEN` of them.
    tail: Vec<Entry>,
    /// Frozen key → id map covering exactly the sealed ids. Shared (and
    /// only copied-on-seal via `Arc::make_mut`) across clones.
    sealed_ids: Arc<FxHashMap<Arc<str>, u32>>,
    /// Key → id for the tail entries only.
    tail_ids: FxHashMap<Arc<str>, u32>,
}

/// One immutable range of `SEGMENT_LEN` consecutive ids.
#[derive(Debug)]
struct DictSegment {
    entries: Vec<Entry>,
}

#[derive(Debug, Clone)]
struct Entry {
    key: Arc<str>,
    kind: TermKind,
}

impl Dictionary {
    /// Entries per sealed segment. Tuned so the per-clone tail copy stays
    /// a few KB while keeping the `Arc`-bump count (len / SEGMENT_LEN)
    /// negligible for multi-million-term KBs.
    pub const SEGMENT_LEN: usize = 1024;

    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty dictionary with room for `cap` entries.
    pub fn with_capacity(cap: usize) -> Self {
        Dictionary {
            sealed: Vec::with_capacity(cap / Self::SEGMENT_LEN + 1),
            tail: Vec::with_capacity(cap.min(Self::SEGMENT_LEN)),
            sealed_ids: Arc::new(FxHashMap::with_capacity_and_hasher(cap, Default::default())),
            tail_ids: FxHashMap::default(),
        }
    }

    /// Interns a term, returning its id. Idempotent.
    pub fn intern(&mut self, term: &Term) -> u32 {
        self.intern_key(&term.dict_key(), term.kind())
    }

    /// Interns a pre-encoded dictionary key with a known kind.
    ///
    /// Used by the parser and the binary loader, which already hold the
    /// canonical encoding and should not re-materialise a [`Term`].
    pub fn intern_key(&mut self, key: &str, kind: TermKind) -> u32 {
        if let Some(&id) = self.sealed_ids.get(key) {
            return id;
        }
        if let Some(&id) = self.tail_ids.get(key) {
            return id;
        }
        let id = self.len() as u32;
        // One allocation, shared between the map key and the entry.
        let shared: Arc<str> = Arc::from(key);
        self.tail.push(Entry {
            key: Arc::clone(&shared),
            kind,
        });
        // While the frozen map is exclusively owned (bulk loads and
        // builders, before any snapshot shares it) insert directly and
        // skip the tail staging map plus its seal-time re-hash: one hash
        // insert per key, as in a flat dictionary. Once snapshots share
        // the map, new keys stage in `tail_ids` so the shared table is
        // only copied at seal (via `make_mut`), never per key.
        if let Some(frozen) = Arc::get_mut(&mut self.sealed_ids) {
            frozen.insert(shared, id);
        } else {
            self.tail_ids.insert(shared, id);
        }
        if self.tail.len() == Self::SEGMENT_LEN {
            self.seal_tail();
        }
        id
    }

    /// Seals the (full) tail into an immutable segment and folds its keys
    /// into the frozen map. `Arc::make_mut` copies the frozen map only
    /// when snapshots still share it — an `Arc`-bump per key plus a table
    /// memcpy, never a rehash — so sealing amortises to
    /// O(len / SEGMENT_LEN) per interned key.
    fn seal_tail(&mut self) {
        debug_assert_eq!(self.tail.len(), Self::SEGMENT_LEN);
        let mut entries = std::mem::take(&mut self.tail);
        entries.shrink_to_fit();
        self.sealed.push(Arc::new(DictSegment { entries }));
        // Nothing staged means every tail key was already inserted
        // directly into an exclusively-owned frozen map — don't force a
        // copy of a (now shared) table just to fold zero keys.
        if !self.tail_ids.is_empty() {
            let frozen = Arc::make_mut(&mut self.sealed_ids);
            frozen.reserve(self.tail_ids.len());
            for (k, v) in self.tail_ids.drain() {
                frozen.insert(k, v);
            }
        }
        self.tail.reserve(Self::SEGMENT_LEN);
    }

    /// Looks up the id of a term without interning.
    pub fn get(&self, term: &Term) -> Option<u32> {
        self.get_key(&term.dict_key())
    }

    /// Looks up the id of a canonical key without interning.
    pub fn get_key(&self, key: &str) -> Option<u32> {
        match self.sealed_ids.get(key) {
            Some(&id) => Some(id),
            None => self.tail_ids.get(key).copied(),
        }
    }

    #[inline]
    fn entry(&self, id: u32) -> &Entry {
        let i = id as usize;
        let seg = i / Self::SEGMENT_LEN;
        if seg < self.sealed.len() {
            &self.sealed[seg].entries[i % Self::SEGMENT_LEN]
        } else {
            &self.tail[i - self.sealed.len() * Self::SEGMENT_LEN]
        }
    }

    /// The canonical key for `id`. Panics if `id` is out of range.
    pub fn key(&self, id: u32) -> &str {
        &self.entry(id).key
    }

    /// The [`TermKind`] of `id`. Panics if `id` is out of range.
    pub fn kind(&self, id: u32) -> TermKind {
        self.entry(id).kind
    }

    /// Materialises the [`Term`] for `id`.
    pub fn term(&self, id: u32) -> Term {
        Term::from_dict_key(self.key(id))
    }

    /// Number of interned terms.
    pub fn len(&self) -> usize {
        self.sealed.len() * Self::SEGMENT_LEN + self.tail.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.sealed.is_empty() && self.tail.is_empty()
    }

    /// Iterates `(id, key, kind)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str, TermKind)> + '_ {
        self.sealed
            .iter()
            .flat_map(|seg| seg.entries.iter())
            .chain(self.tail.iter())
            .enumerate()
            .map(|(i, e)| (i as u32, &*e.key, e.kind))
    }

    /// Addresses of the sealed segments, in id order. Two dictionaries
    /// that share a sealed segment yield the same address for it — the
    /// observable form of the persistence guarantee (used by sharing
    /// diagnostics and the epoch-snapshot tests).
    pub fn sealed_segment_ptrs(&self) -> impl Iterator<Item = usize> + '_ {
        self.sealed.iter().map(|seg| Arc::as_ptr(seg) as usize)
    }

    /// Estimated heap bytes: one shared string allocation per entry (string
    /// data + `Arc` header) plus the map and segment tables.
    ///
    /// Exact under segmentation: each sealed segment this dictionary
    /// references is counted exactly once, even while other live snapshots
    /// share it — `heap_bytes` answers "how much heap does *this*
    /// dictionary keep alive", so a clone reports the same value as its
    /// original rather than zero (shared ≠ free) or double (map keys share
    /// the entry strings).
    pub fn heap_bytes(&self) -> usize {
        // Arc<str> header: strong + weak counts.
        const ARC_HEADER: usize = 16;
        let entry_bytes = |e: &Entry| e.key.len() + ARC_HEADER;
        let strings: usize = self
            .sealed
            .iter()
            .flat_map(|seg| seg.entries.iter())
            .chain(self.tail.iter())
            .map(entry_bytes)
            .sum();
        let map_slot = std::mem::size_of::<(Arc<str>, u32)>() + 1;
        let segments: usize = self
            .sealed
            .iter()
            .map(|seg| seg.entries.capacity() * std::mem::size_of::<Entry>() + ARC_HEADER)
            .sum();
        // The mutable tail structures are counted by *length*, not
        // capacity: clones do not preserve spare capacity, and heap_bytes
        // must report the same exact value for a clone as for its
        // original (both keep the same data alive). The sealed side uses
        // real capacities — those allocations are shared, hence identical.
        let tables = self.sealed_ids.capacity() * map_slot
            + self.tail_ids.len() * map_slot
            + self.sealed.len() * std::mem::size_of::<Arc<DictSegment>>()
            + self.tail.len() * std::mem::size_of::<Entry>();
        strings + segments + tables
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.intern(&Term::iri("http://x/a"));
        let b = d.intern(&Term::iri("http://x/b"));
        let a2 = d.intern(&Term::iri("http://x/a"));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn ids_are_dense_and_stable() {
        let mut d = Dictionary::new();
        for i in 0..100u32 {
            let id = d.intern(&Term::iri(format!("http://x/{i}")));
            assert_eq!(id, i);
        }
        for i in 0..100u32 {
            assert_eq!(d.key(i), format!("http://x/{i}"));
        }
    }

    #[test]
    fn kinds_are_preserved() {
        let mut d = Dictionary::new();
        let i = d.intern(&Term::iri("http://x/a"));
        let l = d.intern(&Term::literal("a"));
        let b = d.intern(&Term::blank("a"));
        assert_eq!(d.kind(i), TermKind::Iri);
        assert_eq!(d.kind(l), TermKind::Literal);
        assert_eq!(d.kind(b), TermKind::Blank);
        // Three distinct terms even though all spell "a".
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn term_roundtrip() {
        let mut d = Dictionary::new();
        let terms = [
            Term::iri("http://x/Paris"),
            Term::literal("42"),
            Term::typed_literal("42", "http://www.w3.org/2001/XMLSchema#integer"),
            Term::lang_literal("Paris", "fr"),
            Term::blank("b0"),
        ];
        for t in &terms {
            let id = d.intern(t);
            assert_eq!(&d.term(id), t);
        }
    }

    #[test]
    fn get_does_not_intern() {
        let mut d = Dictionary::new();
        assert_eq!(d.get(&Term::iri("http://x/a")), None);
        assert_eq!(d.len(), 0);
        d.intern(&Term::iri("http://x/a"));
        assert_eq!(d.get(&Term::iri("http://x/a")), Some(0));
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn iter_yields_in_id_order() {
        let mut d = Dictionary::new();
        d.intern(&Term::iri("b"));
        d.intern(&Term::iri("a"));
        let collected: Vec<_> = d.iter().map(|(id, k, _)| (id, k.to_string())).collect();
        assert_eq!(collected, vec![(0, "b".into()), (1, "a".into())]);
    }

    #[test]
    fn map_key_and_entry_share_one_allocation() {
        let mut d = Dictionary::new();
        let id = d.intern(&Term::iri("http://x/shared"));
        let entry_key = Arc::clone(&d.tail[id as usize].key);
        // Exclusively owned → the key went straight to the frozen map.
        let (map_key, _) = d
            .sealed_ids
            .get_key_value("http://x/shared")
            .expect("interned key");
        assert!(Arc::ptr_eq(&entry_key, map_key));
        // Shared by entry, map, and our local clone.
        assert_eq!(Arc::strong_count(&entry_key), 3);
    }

    #[test]
    fn interning_after_clone_stages_keys_without_copying_the_shared_map() {
        let mut d = Dictionary::new();
        for i in 0..Dictionary::SEGMENT_LEN - 2 {
            d.intern(&Term::iri(format!("http://x/{i}")));
        }
        let snapshot = d.clone();
        // The frozen map is now shared: new keys must stage in the tail
        // map rather than mutate (or copy) the shared table.
        let id = d.intern(&Term::iri("http://x/staged"));
        assert!(Arc::ptr_eq(&d.sealed_ids, &snapshot.sealed_ids));
        assert!(d.tail_ids.contains_key("http://x/staged"));
        assert_eq!(d.get_key("http://x/staged"), Some(id));
        assert_eq!(snapshot.get_key("http://x/staged"), None);
        // Crossing the segment boundary seals and folds the staged keys;
        // the snapshot keeps reading its original (pre-copy) map.
        d.intern(&Term::iri("http://x/boundary"));
        assert_eq!(d.sealed.len(), 1);
        assert!(d.tail_ids.is_empty());
        assert!(!Arc::ptr_eq(&d.sealed_ids, &snapshot.sealed_ids));
        assert_eq!(d.get_key("http://x/staged"), Some(id));
        assert_eq!(snapshot.get_key("http://x/staged"), None);
        assert_eq!(snapshot.len(), Dictionary::SEGMENT_LEN - 2);
    }

    #[test]
    fn sealing_preserves_shared_allocation_and_lookup() {
        let mut d = Dictionary::new();
        for i in 0..Dictionary::SEGMENT_LEN + 5 {
            d.intern(&Term::iri(format!("http://x/{i}")));
        }
        assert_eq!(d.sealed.len(), 1);
        assert_eq!(d.tail.len(), 5);
        // A sealed entry: map key and segment entry still share the Arc.
        let entry_key = Arc::clone(&d.sealed[0].entries[7].key);
        let (map_key, &id) = d
            .sealed_ids
            .get_key_value("http://x/7")
            .expect("sealed key");
        assert!(Arc::ptr_eq(&entry_key, map_key));
        assert_eq!(id, 7);
        assert_eq!(d.get_key("http://x/7"), Some(7));
        // A tail entry after the seal.
        let last = (Dictionary::SEGMENT_LEN + 4) as u32;
        assert_eq!(d.get_key(&format!("http://x/{last}")), Some(last));
        assert_eq!(d.key(last), format!("http://x/{last}"));
    }

    #[test]
    fn clone_shares_sealed_segments() {
        let mut d = Dictionary::new();
        for i in 0..3 * Dictionary::SEGMENT_LEN {
            d.intern(&Term::iri(format!("http://x/{i}")));
        }
        let c = d.clone();
        let a: Vec<usize> = d.sealed_segment_ptrs().collect();
        let b: Vec<usize> = c.sealed_segment_ptrs().collect();
        assert_eq!(a.len(), 3);
        assert_eq!(a, b);
        assert!(Arc::ptr_eq(&d.sealed_ids, &c.sealed_ids));
    }

    #[test]
    fn heap_bytes_tracks_string_growth() {
        let mut d = Dictionary::new();
        let empty = d.heap_bytes();
        d.intern(&Term::iri("http://example.org/a-reasonably-long-iri"));
        assert!(d.heap_bytes() > empty);
    }

    #[test]
    fn heap_bytes_exact_under_segment_sharing() {
        let mut d = Dictionary::new();
        for i in 0..2 * Dictionary::SEGMENT_LEN + 3 {
            d.intern(&Term::iri(format!("http://x/{i:06}")));
        }
        let h = d.heap_bytes();
        // A clone shares every sealed segment and the frozen map, yet
        // reports the same exact footprint: shared segments are counted
        // once per dictionary, not zero (shared ≠ free) and not twice.
        let c = d.clone();
        assert_eq!(c.heap_bytes(), h);
        // Interning one key grows the clone by roughly one entry — far
        // less than a sealed segment's table — proving the sealed
        // portion is not re-counted (or re-copied) per intern.
        let mut c2 = c.clone();
        c2.intern(&Term::iri("http://x/one-more"));
        let grown = c2.heap_bytes();
        assert!(grown > h);
        assert!(grown - h < Dictionary::SEGMENT_LEN * std::mem::size_of::<Entry>());
    }
}
