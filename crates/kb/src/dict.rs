//! String-interning dictionary mapping terms to dense `u32` ids.
//!
//! Every node and predicate string is stored exactly once — and allocated
//! exactly once: the hash-map key and the id-indexed entry share one
//! `Arc<str>`, so string-heavy KBs pay one heap string per distinct term
//! instead of two. Interning uses an [`FxHashMap`](crate::fx::FxHashMap)
//! from the canonical dictionary key to the id; lookups by id are a flat
//! `Vec` index.

use std::sync::Arc;

use crate::fx::FxHashMap;
use crate::term::{Term, TermKind};

/// An interning dictionary for term strings.
///
/// Keys are canonical term encodings (see [`Term::dict_key`]). The kind of
/// each term is stored alongside so hot paths can test "is this a literal?"
/// without reparsing the string.
#[derive(Debug, Default, Clone)]
pub struct Dictionary {
    ids: FxHashMap<Arc<str>, u32>,
    entries: Vec<Entry>,
}

#[derive(Debug, Clone)]
struct Entry {
    key: Arc<str>,
    kind: TermKind,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty dictionary with room for `cap` entries.
    pub fn with_capacity(cap: usize) -> Self {
        Dictionary {
            ids: FxHashMap::with_capacity_and_hasher(cap, Default::default()),
            entries: Vec::with_capacity(cap),
        }
    }

    /// Interns a term, returning its id. Idempotent.
    pub fn intern(&mut self, term: &Term) -> u32 {
        self.intern_key(&term.dict_key(), term.kind())
    }

    /// Interns a pre-encoded dictionary key with a known kind.
    ///
    /// Used by the parser and the binary loader, which already hold the
    /// canonical encoding and should not re-materialise a [`Term`].
    pub fn intern_key(&mut self, key: &str, kind: TermKind) -> u32 {
        if let Some(&id) = self.ids.get(key) {
            return id;
        }
        let id = self.entries.len() as u32;
        // One allocation, shared between the map key and the entry.
        let shared: Arc<str> = Arc::from(key);
        self.entries.push(Entry {
            key: Arc::clone(&shared),
            kind,
        });
        self.ids.insert(shared, id);
        id
    }

    /// Looks up the id of a term without interning.
    pub fn get(&self, term: &Term) -> Option<u32> {
        self.get_key(&term.dict_key())
    }

    /// Looks up the id of a canonical key without interning.
    pub fn get_key(&self, key: &str) -> Option<u32> {
        self.ids.get(key).copied()
    }

    /// The canonical key for `id`. Panics if `id` is out of range.
    pub fn key(&self, id: u32) -> &str {
        &self.entries[id as usize].key
    }

    /// The [`TermKind`] of `id`. Panics if `id` is out of range.
    pub fn kind(&self, id: u32) -> TermKind {
        self.entries[id as usize].kind
    }

    /// Materialises the [`Term`] for `id`.
    pub fn term(&self, id: u32) -> Term {
        Term::from_dict_key(self.key(id))
    }

    /// Number of interned terms.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(id, key, kind)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str, TermKind)> + '_ {
        self.entries
            .iter()
            .enumerate()
            .map(|(i, e)| (i as u32, &*e.key, e.kind))
    }

    /// Estimated heap bytes: one shared string allocation per entry (string
    /// data + `Arc` header) plus the map and vec tables.
    pub fn heap_bytes(&self) -> usize {
        // Arc<str> header: strong + weak counts.
        const ARC_HEADER: usize = 16;
        let strings: usize = self.entries.iter().map(|e| e.key.len() + ARC_HEADER).sum();
        let tables = self.ids.capacity() * (std::mem::size_of::<(Arc<str>, u32)>() + 1)
            + self.entries.capacity() * std::mem::size_of::<Entry>();
        strings + tables
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.intern(&Term::iri("http://x/a"));
        let b = d.intern(&Term::iri("http://x/b"));
        let a2 = d.intern(&Term::iri("http://x/a"));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn ids_are_dense_and_stable() {
        let mut d = Dictionary::new();
        for i in 0..100u32 {
            let id = d.intern(&Term::iri(format!("http://x/{i}")));
            assert_eq!(id, i);
        }
        for i in 0..100u32 {
            assert_eq!(d.key(i), format!("http://x/{i}"));
        }
    }

    #[test]
    fn kinds_are_preserved() {
        let mut d = Dictionary::new();
        let i = d.intern(&Term::iri("http://x/a"));
        let l = d.intern(&Term::literal("a"));
        let b = d.intern(&Term::blank("a"));
        assert_eq!(d.kind(i), TermKind::Iri);
        assert_eq!(d.kind(l), TermKind::Literal);
        assert_eq!(d.kind(b), TermKind::Blank);
        // Three distinct terms even though all spell "a".
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn term_roundtrip() {
        let mut d = Dictionary::new();
        let terms = [
            Term::iri("http://x/Paris"),
            Term::literal("42"),
            Term::typed_literal("42", "http://www.w3.org/2001/XMLSchema#integer"),
            Term::lang_literal("Paris", "fr"),
            Term::blank("b0"),
        ];
        for t in &terms {
            let id = d.intern(t);
            assert_eq!(&d.term(id), t);
        }
    }

    #[test]
    fn get_does_not_intern() {
        let mut d = Dictionary::new();
        assert_eq!(d.get(&Term::iri("http://x/a")), None);
        assert_eq!(d.len(), 0);
        d.intern(&Term::iri("http://x/a"));
        assert_eq!(d.get(&Term::iri("http://x/a")), Some(0));
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn iter_yields_in_id_order() {
        let mut d = Dictionary::new();
        d.intern(&Term::iri("b"));
        d.intern(&Term::iri("a"));
        let collected: Vec<_> = d.iter().map(|(id, k, _)| (id, k.to_string())).collect();
        assert_eq!(collected, vec![(0, "b".into()), (1, "a".into())]);
    }

    #[test]
    fn map_key_and_entry_share_one_allocation() {
        let mut d = Dictionary::new();
        let id = d.intern(&Term::iri("http://x/shared"));
        let entry_key = Arc::clone(&d.entries[id as usize].key);
        let (map_key, _) = d
            .ids
            .get_key_value("http://x/shared")
            .expect("interned key");
        assert!(Arc::ptr_eq(&entry_key, map_key));
        // Shared by entry, map, and our local clone.
        assert_eq!(Arc::strong_count(&entry_key), 3);
    }

    #[test]
    fn heap_bytes_tracks_string_growth() {
        let mut d = Dictionary::new();
        let empty = d.heap_bytes();
        d.intern(&Term::iri("http://example.org/a-reasonably-long-iri"));
        assert!(d.heap_bytes() > empty);
    }
}
