//! The in-memory knowledge base: dictionary-encoded triples behind a
//! pluggable storage backend.
//!
//! The paper stores KBs as HDT and retrieves bindings for atom `p(X, Y)`
//! through Jena (§3.5.1). Our substrate offers the same primitive — binding
//! retrieval for a predicate given the subject or the object — behind the
//! [`TripleStore`] abstraction: the default [`CsrStore`] answers lookups as
//! slice views over compressed sparse rows, while the succinct
//! [`BitmapTriples`](crate::succinct::BitmapTriples) backend answers them
//! from rank/select-delimited packed sequences at a fraction of the
//! footprint. Statistics (frequencies, prominence rankings) are
//! backend-independent and live on [`KnowledgeBase`] itself.

use crate::backend::{Backend, Bindings, PredView, StoreBackend, StoreMemory, TripleStore};
use crate::dict::Dictionary;
use crate::error::{KbError, Result};
use crate::freq::FreqVec;
use crate::fx::FxHashMap;
use crate::ids::{NodeId, PredId, Triple};
use crate::term::{Term, TermKind};

/// The IRI used for `rdf:type` assertions.
pub const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
/// The IRI used for human-readable labels.
pub const RDFS_LABEL: &str = "http://www.w3.org/2000/01/rdf-schema#label";
/// Suffix appended to a predicate IRI to name its materialised inverse.
pub const INVERSE_SUFFIX: &str = "⁻¹";

/// A one-directional CSR adjacency: sorted unique keys, offsets, values.
/// Crate-visible because the delta overlay reuses it for its sorted runs.
#[derive(Debug, Clone, Default)]
pub(crate) struct Csr {
    keys: Vec<u32>,
    offsets: Vec<u32>,
    values: Vec<u32>,
}

impl Csr {
    /// Builds from `(key, value)` pairs sorted by `(key, value)` with no
    /// duplicates.
    pub(crate) fn from_sorted_pairs(pairs: &[(u32, u32)]) -> Csr {
        let mut keys = Vec::new();
        let mut offsets = vec![0u32];
        let mut values = Vec::with_capacity(pairs.len());
        let mut current: Option<u32> = None;
        for &(k, v) in pairs {
            if current != Some(k) {
                keys.push(k);
                offsets.push(values.len() as u32);
                current = Some(k);
            }
            values.push(v);
            *offsets.last_mut().expect("offsets is never empty") = values.len() as u32;
        }
        // offsets currently holds [0, end_0, end_1, ...]; already correct:
        // group i spans offsets[i]..offsets[i+1].
        Csr {
            keys,
            offsets,
            values,
        }
    }

    #[inline]
    pub(crate) fn get(&self, key: u32) -> &[u32] {
        match self.keys.binary_search(&key) {
            Ok(i) => self.group(i),
            Err(_) => &[],
        }
    }

    #[inline]
    pub(crate) fn group(&self, i: usize) -> &[u32] {
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        &self.values[lo..hi]
    }

    #[inline]
    pub(crate) fn group_len(&self, i: usize) -> usize {
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// The sorted distinct keys.
    #[inline]
    pub(crate) fn keys(&self) -> &[u32] {
        &self.keys
    }

    /// Number of distinct keys.
    #[inline]
    pub(crate) fn num_keys(&self) -> usize {
        self.keys.len()
    }

    /// Resident bytes of the three arrays.
    pub(crate) fn size_in_bytes(&self) -> usize {
        (self.keys.len() + self.offsets.len() + self.values.len()) * 4
    }
}

/// Per-predicate index: bindings by subject and by object.
#[derive(Debug, Clone, Default)]
struct PredIndex {
    by_subject: Csr,
    by_object: Csr,
    facts: u32,
}

/// The default storage backend: per-predicate CSR adjacency in both
/// directions plus a subject→predicates CSR.
#[derive(Debug, Clone, Default)]
pub struct CsrStore {
    indexes: Vec<PredIndex>,
    /// node → sorted predicates (incl. inverses) having the node as subject.
    subject_preds: Csr,
}

impl CsrStore {
    /// Builds from per-predicate `(s, o)` pair lists, each sorted by
    /// `(s, o)` and deduplicated.
    pub(crate) fn from_pred_pairs(per_pred: Vec<Vec<(u32, u32)>>) -> CsrStore {
        let mut indexes = Vec::with_capacity(per_pred.len());
        for pairs in per_pred {
            let by_subject = Csr::from_sorted_pairs(&pairs);
            let mut flipped: Vec<(u32, u32)> = pairs.iter().map(|&(s, o)| (o, s)).collect();
            flipped.sort_unstable();
            let by_object = Csr::from_sorted_pairs(&flipped);
            indexes.push(PredIndex {
                by_subject,
                by_object,
                facts: pairs.len() as u32,
            });
        }
        let subject_preds = Self::subject_preds_of(&indexes);
        CsrStore {
            indexes,
            subject_preds,
        }
    }

    fn subject_preds_of(indexes: &[PredIndex]) -> Csr {
        let mut sp_pairs: Vec<(u32, u32)> = Vec::new();
        for (p, idx) in indexes.iter().enumerate() {
            for &s in &idx.by_subject.keys {
                sp_pairs.push((s, p as u32));
            }
        }
        sp_pairs.sort_unstable();
        sp_pairs.dedup();
        Csr::from_sorted_pairs(&sp_pairs)
    }

    /// Rebuilds a CSR store from any other backend.
    pub(crate) fn from_store(src: &StoreBackend, _num_nodes: usize) -> CsrStore {
        let num_preds = src.num_preds();
        let mut per_pred = Vec::with_capacity(num_preds);
        for p in (0..num_preds as u32).map(PredId) {
            let mut pairs = Vec::with_capacity(src.num_facts(p));
            for i in 0..src.num_subjects(p) {
                let s = src.subject_at(p, i).0;
                for o in src.objects_at(p, i) {
                    pairs.push((s, o));
                }
            }
            per_pred.push(pairs);
        }
        CsrStore::from_pred_pairs(per_pred)
    }
}

impl TripleStore for CsrStore {
    fn backend(&self) -> Backend {
        Backend::Csr
    }

    fn num_preds(&self) -> usize {
        self.indexes.len()
    }

    #[inline]
    fn num_facts(&self, p: PredId) -> usize {
        self.indexes[p.idx()].facts as usize
    }

    #[inline]
    fn num_subjects(&self, p: PredId) -> usize {
        self.indexes[p.idx()].by_subject.keys.len()
    }

    #[inline]
    fn num_objects(&self, p: PredId) -> usize {
        self.indexes[p.idx()].by_object.keys.len()
    }

    #[inline]
    fn objects(&self, p: PredId, s: NodeId) -> Bindings<'_> {
        Bindings::Slice(self.indexes[p.idx()].by_subject.get(s.0))
    }

    #[inline]
    fn subjects(&self, p: PredId, o: NodeId) -> Bindings<'_> {
        Bindings::Slice(self.indexes[p.idx()].by_object.get(o.0))
    }

    #[inline]
    fn subject_at(&self, p: PredId, i: usize) -> NodeId {
        NodeId(self.indexes[p.idx()].by_subject.keys[i])
    }

    #[inline]
    fn objects_at(&self, p: PredId, i: usize) -> Bindings<'_> {
        Bindings::Slice(self.indexes[p.idx()].by_subject.group(i))
    }

    #[inline]
    fn object_at(&self, p: PredId, i: usize) -> NodeId {
        NodeId(self.indexes[p.idx()].by_object.keys[i])
    }

    #[inline]
    fn subjects_at(&self, p: PredId, i: usize) -> Bindings<'_> {
        Bindings::Slice(self.indexes[p.idx()].by_object.group(i))
    }

    #[inline]
    fn object_group_len(&self, p: PredId, i: usize) -> usize {
        self.indexes[p.idx()].by_object.group_len(i)
    }

    #[inline]
    fn preds_of_subject(&self, s: NodeId) -> Bindings<'_> {
        Bindings::Slice(self.subject_preds.get(s.0))
    }

    fn memory(&self) -> StoreMemory {
        let mut m = StoreMemory::default();
        let by_subject: usize = self
            .indexes
            .iter()
            .map(|i| i.by_subject.size_in_bytes())
            .sum();
        let by_object: usize = self
            .indexes
            .iter()
            .map(|i| i.by_object.size_in_bytes())
            .sum();
        m.add("csr.by_subject", by_subject);
        m.add("csr.by_object", by_object);
        m.add("csr.subject_preds", self.subject_preds.size_in_bytes());
        m
    }
}

/// A fully built, immutable knowledge base.
#[derive(Debug, Clone)]
pub struct KnowledgeBase {
    nodes: Dictionary,
    preds: Dictionary,
    store: StoreBackend,
    /// Facts mentioning the node (as s or o) in *base* (non-inverse) facts.
    /// Segmented ([`FreqVec`]) so epoch snapshots share counter segments.
    node_freq: FreqVec,
    /// Facts per predicate.
    pred_freq: Vec<u32>,
    /// base predicate → its materialised inverse, if any.
    inverse_of: Vec<Option<PredId>>,
    /// inverse predicate → its base predicate.
    base_of: Vec<Option<PredId>>,
    type_pred: Option<PredId>,
    label_pred: Option<PredId>,
    n_base_triples: usize,
    n_total_triples: usize,
}

/// Derives `(inverse_of, base_of)` links from predicate IRIs: `p⁻¹` is the
/// inverse of `p` whenever both are interned.
pub(crate) fn derive_inverse_links(
    preds: &Dictionary,
) -> (Vec<Option<PredId>>, Vec<Option<PredId>>) {
    let num_preds = preds.len();
    let mut inverse_of: Vec<Option<PredId>> = vec![None; num_preds];
    let mut base_of: Vec<Option<PredId>> = vec![None; num_preds];
    for p in 0..num_preds as u32 {
        if let Some(base_iri) = preds.key(p).strip_suffix(INVERSE_SUFFIX) {
            if let Some(b) = preds.get_key(base_iri) {
                inverse_of[b as usize] = Some(PredId(p));
                base_of[p as usize] = Some(PredId(b));
            }
        }
    }
    (inverse_of, base_of)
}

impl KnowledgeBase {
    /// Assembles a KB from already-built parts (the `RKB2` loader).
    pub(crate) fn from_parts(
        nodes: Dictionary,
        preds: Dictionary,
        store: StoreBackend,
        node_freq: FreqVec,
        n_base_triples: usize,
    ) -> KnowledgeBase {
        let (inverse_of, base_of) = derive_inverse_links(&preds);
        let pred_freq: Vec<u32> = (0..preds.len() as u32)
            .map(|p| store.num_facts(PredId(p)) as u32)
            .collect();
        let n_total = pred_freq.iter().map(|&f| f as usize).sum();
        let type_pred = preds.get_key(RDF_TYPE).map(PredId);
        let label_pred = preds.get_key(RDFS_LABEL).map(PredId);
        KnowledgeBase {
            nodes,
            preds,
            store,
            node_freq,
            pred_freq,
            inverse_of,
            base_of,
            type_pred,
            label_pred,
            n_base_triples,
            n_total_triples: n_total,
        }
    }

    /// Decomposes the KB into the parts the live delta wrapper needs to
    /// take ownership of (the inverse of [`KnowledgeBase::from_parts`]).
    pub(crate) fn into_parts(self) -> (Dictionary, Dictionary, StoreBackend, FreqVec, usize) {
        (
            self.nodes,
            self.preds,
            self.store,
            self.node_freq,
            self.n_base_triples,
        )
    }

    /// Number of node terms in the dictionary.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of predicates (including materialised inverses).
    pub fn num_preds(&self) -> usize {
        self.preds.len()
    }

    /// Number of base (non-inverse) triples.
    pub fn num_triples(&self) -> usize {
        self.n_base_triples
    }

    /// Number of triples including materialised inverse facts.
    pub fn num_triples_with_inverses(&self) -> usize {
        self.n_total_triples
    }

    /// The node dictionary.
    pub fn node_dict(&self) -> &Dictionary {
        &self.nodes
    }

    /// The predicate dictionary.
    pub fn pred_dict(&self) -> &Dictionary {
        &self.preds
    }

    /// The storage backend in use.
    pub fn backend(&self) -> Backend {
        self.store.backend()
    }

    /// The raw store (for backend-aware tooling like the binary writer).
    pub fn store(&self) -> &StoreBackend {
        &self.store
    }

    /// Rebuilds the KB with another storage backend. Dictionaries and
    /// statistics are shared; only the triple index layout changes, so
    /// every query answers identically afterwards.
    pub fn with_backend(mut self, kind: Backend) -> KnowledgeBase {
        self.store = self.store.to_backend(kind, self.nodes.len());
        self
    }

    /// Per-component resident memory of the triple store (dictionaries
    /// excluded; see [`Dictionary::heap_bytes`] for those).
    pub fn store_memory(&self) -> StoreMemory {
        self.store.memory()
    }

    /// Id of a node term, if present.
    pub fn node_id(&self, t: &Term) -> Option<NodeId> {
        self.nodes.get(t).map(NodeId)
    }

    /// Id of a node given its IRI string.
    pub fn node_id_by_iri(&self, iri: &str) -> Option<NodeId> {
        self.nodes.get_key(iri).map(NodeId)
    }

    /// Id of a predicate given its IRI.
    pub fn pred_id(&self, iri: &str) -> Option<PredId> {
        self.preds.get_key(iri).map(PredId)
    }

    /// Materialises the [`Term`] for a node id.
    pub fn node_term(&self, n: NodeId) -> Term {
        self.nodes.term(n.0)
    }

    /// The canonical key of a node id.
    pub fn node_key(&self, n: NodeId) -> &str {
        self.nodes.key(n.0)
    }

    /// The [`TermKind`] of a node id.
    pub fn node_kind(&self, n: NodeId) -> TermKind {
        self.nodes.kind(n.0)
    }

    /// The IRI of a predicate id.
    pub fn pred_iri(&self, p: PredId) -> &str {
        self.preds.key(p.0)
    }

    /// A short human-readable predicate name (IRI local part, with the
    /// inverse marker preserved).
    pub fn pred_name(&self, p: PredId) -> String {
        let iri = self.pred_iri(p);
        let base = iri.strip_suffix(INVERSE_SUFFIX);
        let (core, inv) = match base {
            Some(b) => (b, true),
            None => (iri, false),
        };
        let cut = core.rfind(['/', '#', ':']).map(|i| i + 1).unwrap_or(0);
        let mut out = core[cut..].to_string();
        if inv {
            out.push_str(INVERSE_SUFFIX);
        }
        out
    }

    /// A short human-readable node name: its `rdfs:label` if present,
    /// otherwise the IRI local name / lexical form.
    pub fn node_name(&self, n: NodeId) -> String {
        if let Some(l) = self.label(n) {
            return l;
        }
        self.node_term(n).short_name().to_string()
    }

    /// The `rdfs:label` of a node, if the KB has one.
    pub fn label(&self, n: NodeId) -> Option<String> {
        let lp = self.label_pred?;
        let objs = self.index(lp).objects_of(n);
        objs.first().map(|o| match self.nodes.term(o) {
            Term::Literal { lexical, .. } => lexical,
            other => other.short_name().to_string(),
        })
    }

    /// A backend-agnostic view of predicate `p`'s index.
    // Not `std::ops::Index`: that trait cannot return a non-reference or
    // take our id type ergonomically, and `kb.index(p)` is established API.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn index(&self, p: PredId) -> PredView<'_> {
        PredView::new(&self.store, p)
    }

    /// Bindings of `y` in `p(s, y)`, sorted by id.
    #[inline]
    pub fn objects(&self, p: PredId, s: NodeId) -> Bindings<'_> {
        self.store.objects(p, s)
    }

    /// Bindings of `x` in `p(x, o)`, sorted by id.
    #[inline]
    pub fn subjects(&self, p: PredId, o: NodeId) -> Bindings<'_> {
        self.store.subjects(p, o)
    }

    /// Tests whether `p(s, o)` is a fact.
    #[inline]
    pub fn contains(&self, s: NodeId, p: PredId, o: NodeId) -> bool {
        self.store.contains(s, p, o)
    }

    /// Predicates (including inverses) with `s` as subject, sorted.
    #[inline]
    pub fn preds_of_subject(&self, s: NodeId) -> Bindings<'_> {
        self.store.preds_of_subject(s)
    }

    /// Frequency of a node (mentions in base facts) — the `fr` prominence.
    #[inline]
    pub fn node_frequency(&self, n: NodeId) -> u32 {
        self.node_freq.get(n.idx())
    }

    /// Frequency of a predicate (its number of facts).
    #[inline]
    pub fn pred_frequency(&self, p: PredId) -> u32 {
        self.pred_freq[p.idx()]
    }

    /// The materialised inverse of `p`, if any.
    pub fn inverse(&self, p: PredId) -> Option<PredId> {
        self.inverse_of[p.idx()]
    }

    /// The base predicate if `p` is a materialised inverse.
    pub fn base_pred(&self, p: PredId) -> Option<PredId> {
        self.base_of[p.idx()]
    }

    /// True if `p` is a materialised inverse predicate.
    pub fn is_inverse(&self, p: PredId) -> bool {
        self.base_of[p.idx()].is_some()
    }

    /// The `rdf:type` predicate of this KB, if present.
    pub fn type_pred(&self) -> Option<PredId> {
        self.type_pred
    }

    /// The `rdfs:label` predicate of this KB, if present.
    pub fn label_pred(&self) -> Option<PredId> {
        self.label_pred
    }

    /// All predicate ids.
    pub fn pred_ids(&self) -> impl Iterator<Item = PredId> {
        (0..self.preds.len() as u32).map(PredId)
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// All entity (IRI) node ids.
    pub fn entity_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_ids()
            .filter(move |&n| self.node_kind(n) == TermKind::Iri)
    }

    /// Iterates all base (non-inverse) triples.
    pub fn iter_triples(&self) -> impl Iterator<Item = Triple> + '_ {
        self.pred_ids()
            .filter(move |&p| !self.is_inverse(p))
            .flat_map(move |p| {
                self.index(p).iter_subjects().flat_map(move |(s, objs)| {
                    objs.iter().map(move |o| Triple::new(s, p, NodeId(o)))
                })
            })
    }

    /// Entities in the top `fraction` of the `fr` ranking (used by the
    /// §3.5.2 "don't expand prominent objects" heuristic and the §4
    /// inverse-materialisation rule). Returns ids sorted by descending
    /// frequency; ties broken by id for determinism.
    pub fn top_frequent_entities(&self, fraction: f64) -> Vec<NodeId> {
        let mut ents: Vec<NodeId> = self
            .entity_ids()
            .filter(|&n| self.node_frequency(n) > 0)
            .collect();
        ents.sort_by_key(|&n| (std::cmp::Reverse(self.node_frequency(n)), n.0));
        let k = ((ents.len() as f64) * fraction).ceil() as usize;
        ents.truncate(k.min(ents.len()));
        ents
    }

    /// Instances of a class: bindings of `x` in `rdf:type(x, class)`.
    pub fn instances_of(&self, class: NodeId) -> Bindings<'_> {
        match self.type_pred {
            Some(tp) => self.subjects(tp, class),
            None => Bindings::EMPTY,
        }
    }
}

/// Incremental builder for a [`KnowledgeBase`].
#[derive(Debug, Default, Clone)]
pub struct KbBuilder {
    nodes: Dictionary,
    preds: Dictionary,
    triples: Vec<Triple>,
}

impl KbBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-sizes internal tables.
    pub fn with_capacity(nodes: usize, preds: usize, triples: usize) -> Self {
        KbBuilder {
            nodes: Dictionary::with_capacity(nodes),
            preds: Dictionary::with_capacity(preds),
            triples: Vec::with_capacity(triples),
        }
    }

    /// Interns a node term.
    pub fn node(&mut self, t: &Term) -> NodeId {
        NodeId(self.nodes.intern(t))
    }

    /// Interns an entity node by IRI.
    pub fn entity(&mut self, iri: &str) -> NodeId {
        NodeId(self.nodes.intern_key(iri, TermKind::Iri))
    }

    /// Interns a predicate by IRI.
    pub fn pred(&mut self, iri: &str) -> PredId {
        PredId(self.preds.intern_key(iri, TermKind::Iri))
    }

    /// Adds a triple from materialised terms.
    pub fn add(&mut self, s: &Term, p: &str, o: &Term) {
        let s = self.node(s);
        let p = self.pred(p);
        let o = self.node(o);
        self.add_ids(s, p, o);
    }

    /// Adds an entity-to-entity triple by IRI strings.
    pub fn add_iri(&mut self, s: &str, p: &str, o: &str) {
        let s = self.entity(s);
        let p = self.pred(p);
        let o = self.entity(o);
        self.add_ids(s, p, o);
    }

    /// Adds a triple from ids previously interned on this builder.
    #[inline]
    pub fn add_ids(&mut self, s: NodeId, p: PredId, o: NodeId) {
        self.triples.push(Triple::new(s, p, o));
    }

    /// Number of (possibly duplicate) triples staged so far.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// True if no triples are staged.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Builds the KB without inverse materialisation.
    pub fn build(self) -> Result<KnowledgeBase> {
        self.build_with_inverses(0.0)
    }

    /// Builds the KB, materialising inverse predicates `p⁻¹(o, s)` for all
    /// objects `o` among the top `fraction` most frequent entities —
    /// exactly the preprocessing of §4 (the paper uses the top 1 %).
    ///
    /// Inverse facts are only created for non-literal objects, matching the
    /// RDF-compliance footnote of §2.1. The result uses the CSR backend;
    /// call [`KnowledgeBase::with_backend`] to convert.
    pub fn build_with_inverses(mut self, fraction: f64) -> Result<KnowledgeBase> {
        if self.triples.is_empty() {
            return Err(KbError::Empty);
        }
        self.triples.sort_unstable();
        self.triples.dedup();
        let n_base = self.triples.len();

        let num_nodes = self.nodes.len();
        // Base node frequencies (before inverses, which would double-count).
        let mut node_freq = vec![0u32; num_nodes];
        for t in &self.triples {
            node_freq[t.s.idx()] += 1;
            node_freq[t.o.idx()] += 1;
        }

        let n_inverse_base = self.preds.len();
        if fraction > 0.0 {
            // Rank entities by frequency to find the inverse-eligible set.
            let mut ents: Vec<u32> = (0..num_nodes as u32)
                .filter(|&n| self.nodes.kind(n) == TermKind::Iri && node_freq[n as usize] > 0)
                .collect();
            ents.sort_by_key(|&n| (std::cmp::Reverse(node_freq[n as usize]), n));
            let k = ((ents.len() as f64) * fraction).ceil() as usize;
            let top: crate::fx::FxHashSet<u32> = ents.into_iter().take(k).collect();

            let mut inverse_ids: FxHashMap<u32, u32> = FxHashMap::default();
            let mut extra: Vec<Triple> = Vec::new();
            for t in &self.triples {
                if t.p.0 >= n_inverse_base as u32 {
                    continue; // never invert an inverse
                }
                if self.nodes.kind(t.o.0) == TermKind::Literal {
                    continue;
                }
                if !top.contains(&t.o.0) {
                    continue;
                }
                let inv = match inverse_ids.get(&t.p.0) {
                    Some(&id) => id,
                    None => {
                        let iri = format!("{}{}", self.preds.key(t.p.0), INVERSE_SUFFIX);
                        let id = self.preds.intern_key(&iri, TermKind::Iri);
                        inverse_ids.insert(t.p.0, id);
                        id
                    }
                };
                extra.push(Triple::new(t.o, PredId(inv), t.s));
            }
            self.triples.extend(extra);
            self.triples.sort_unstable();
            self.triples.dedup();
        }

        let num_preds = self.preds.len();
        let (inverse_of, base_of) = derive_inverse_links(&self.preds);

        // Group triples by predicate and build the CSR backend.
        let mut per_pred: Vec<Vec<(u32, u32)>> = vec![Vec::new(); num_preds];
        for t in &self.triples {
            per_pred[t.p.idx()].push((t.s.0, t.o.0));
        }
        let mut pred_freq = vec![0u32; num_preds];
        for (p, pairs) in per_pred.iter_mut().enumerate() {
            pred_freq[p] = pairs.len() as u32;
            pairs.sort_unstable();
        }
        let store = StoreBackend::Csr(CsrStore::from_pred_pairs(per_pred));

        let type_pred = self.preds.get_key(RDF_TYPE).map(PredId);
        let label_pred = self.preds.get_key(RDFS_LABEL).map(PredId);
        let n_total = self.triples.len();

        Ok(KnowledgeBase {
            nodes: self.nodes,
            preds: self.preds,
            store,
            node_freq: FreqVec::from_vec(node_freq),
            pred_freq,
            inverse_of,
            base_of,
            type_pred,
            label_pred,
            n_base_triples: n_base,
            n_total_triples: n_total,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_kb() -> KnowledgeBase {
        let mut b = KbBuilder::new();
        b.add_iri("e:Paris", "p:capitalOf", "e:France");
        b.add_iri("e:Paris", "p:cityIn", "e:France");
        b.add_iri("e:Lyon", "p:cityIn", "e:France");
        b.add_iri("e:Berlin", "p:capitalOf", "e:Germany");
        b.add_iri("e:Berlin", "p:cityIn", "e:Germany");
        b.add(
            &Term::iri("e:Paris"),
            RDFS_LABEL,
            &Term::lang_literal("Paris", "fr"),
        );
        b.add_iri("e:Paris", RDF_TYPE, "e:City");
        b.add_iri("e:Lyon", RDF_TYPE, "e:City");
        b.add_iri("e:Berlin", RDF_TYPE, "e:City");
        b.build().unwrap()
    }

    #[test]
    fn empty_builder_is_rejected() {
        assert!(matches!(KbBuilder::new().build(), Err(KbError::Empty)));
    }

    #[test]
    fn duplicates_are_removed() {
        let mut b = KbBuilder::new();
        b.add_iri("e:a", "p:r", "e:b");
        b.add_iri("e:a", "p:r", "e:b");
        let kb = b.build().unwrap();
        assert_eq!(kb.num_triples(), 1);
    }

    #[test]
    fn bindings_by_subject_and_object() {
        let kb = small_kb();
        let city_in = kb.pred_id("p:cityIn").unwrap();
        let france = kb.node_id_by_iri("e:France").unwrap();
        let paris = kb.node_id_by_iri("e:Paris").unwrap();
        let lyon = kb.node_id_by_iri("e:Lyon").unwrap();

        let mut subs: Vec<u32> = kb.subjects(city_in, france).to_vec();
        subs.sort_unstable();
        let mut expect = vec![paris.0, lyon.0];
        expect.sort_unstable();
        assert_eq!(subs, expect);

        assert_eq!(kb.objects(city_in, paris).to_vec(), vec![france.0]);
        assert!(kb.contains(paris, city_in, france));
        assert!(!kb.contains(france, city_in, paris));
    }

    #[test]
    fn preds_of_subject_lists_all() {
        let kb = small_kb();
        let paris = kb.node_id_by_iri("e:Paris").unwrap();
        let preds: Vec<String> = kb
            .preds_of_subject(paris)
            .iter()
            .map(|p| kb.pred_iri(PredId(p)).to_string())
            .collect();
        assert!(preds.contains(&"p:capitalOf".to_string()));
        assert!(preds.contains(&"p:cityIn".to_string()));
        assert!(preds.contains(&RDF_TYPE.to_string()));
    }

    #[test]
    fn frequencies_count_base_facts() {
        let kb = small_kb();
        let france = kb.node_id_by_iri("e:France").unwrap();
        // France appears as object of capitalOf once and cityIn twice.
        assert_eq!(kb.node_frequency(france), 3);
        let city_in = kb.pred_id("p:cityIn").unwrap();
        assert_eq!(kb.pred_frequency(city_in), 3);
    }

    #[test]
    fn type_and_label_detection() {
        let kb = small_kb();
        assert!(kb.type_pred().is_some());
        assert!(kb.label_pred().is_some());
        let paris = kb.node_id_by_iri("e:Paris").unwrap();
        assert_eq!(kb.label(paris).as_deref(), Some("Paris"));
        let city = kb.node_id_by_iri("e:City").unwrap();
        assert_eq!(kb.instances_of(city).len(), 3);
    }

    #[test]
    fn inverse_materialisation_creates_inverse_facts() {
        let mut b = KbBuilder::new();
        b.add_iri("e:Paris", "p:capitalOf", "e:France");
        b.add_iri("e:Lyon", "p:cityIn", "e:France");
        b.add_iri("e:Nice", "p:cityIn", "e:France");
        b.add_iri("e:x", "p:cityIn", "e:y");
        // France is clearly the most frequent entity; top-30% captures it.
        let kb = b.build_with_inverses(0.3).unwrap();
        let inv = kb.pred_id(&format!("p:cityIn{INVERSE_SUFFIX}"));
        assert!(inv.is_some());
        let inv = inv.unwrap();
        assert!(kb.is_inverse(inv));
        let base = kb.pred_id("p:cityIn").unwrap();
        assert_eq!(kb.base_pred(inv), Some(base));
        assert_eq!(kb.inverse(base), Some(inv));

        let france = kb.node_id_by_iri("e:France").unwrap();
        let lyon = kb.node_id_by_iri("e:Lyon").unwrap();
        assert!(kb.contains(france, inv, lyon));
        // Base triple count unchanged by materialisation.
        assert_eq!(kb.num_triples(), 4);
        assert!(kb.num_triples_with_inverses() > kb.num_triples());
    }

    #[test]
    fn inverses_skip_literals() {
        let mut b = KbBuilder::new();
        let lit = Term::literal("42");
        b.add(&Term::iri("e:a"), "p:age", &lit);
        b.add(&Term::iri("e:b"), "p:age", &lit);
        b.add(&Term::iri("e:c"), "p:age", &lit);
        let kb = b.build_with_inverses(1.0).unwrap();
        assert!(kb.pred_id(&format!("p:age{INVERSE_SUFFIX}")).is_none());
    }

    #[test]
    fn top_frequent_entities_ordering() {
        let kb = small_kb();
        let top = kb.top_frequent_entities(1.0);
        let paris = kb.node_id_by_iri("e:Paris").unwrap();
        let france = kb.node_id_by_iri("e:France").unwrap();
        let lyon = kb.node_id_by_iri("e:Lyon").unwrap();
        // Paris occurs in 4 base facts, France in 3, Lyon in 2.
        let pos = |n: NodeId| top.iter().position(|&x| x == n).unwrap();
        assert!(pos(paris) < pos(france));
        assert!(pos(france) < pos(lyon));
        // Fraction 0 yields nothing... actually ceil(0 * n) = 0.
        assert!(kb.top_frequent_entities(0.0).is_empty());
    }

    #[test]
    fn iter_triples_excludes_inverses() {
        let mut b = KbBuilder::new();
        b.add_iri("e:a", "p:r", "e:hub");
        b.add_iri("e:b", "p:r", "e:hub");
        b.add_iri("e:c", "p:r", "e:hub");
        let kb = b.build_with_inverses(0.5).unwrap();
        let triples: Vec<Triple> = kb.iter_triples().collect();
        assert_eq!(triples.len(), kb.num_triples());
        for t in triples {
            assert!(!kb.is_inverse(t.p));
        }
    }

    #[test]
    fn pred_name_keeps_inverse_marker() {
        let mut b = KbBuilder::new();
        b.add_iri("e:a", "http://x/ontology/cityIn", "e:hub");
        b.add_iri("e:b", "http://x/ontology/cityIn", "e:hub");
        let kb = b.build_with_inverses(1.0).unwrap();
        let base = kb.pred_id("http://x/ontology/cityIn").unwrap();
        assert_eq!(kb.pred_name(base), "cityIn");
        let inv = kb.inverse(base).unwrap();
        assert_eq!(kb.pred_name(inv), format!("cityIn{INVERSE_SUFFIX}"));
    }

    #[test]
    fn csr_handles_missing_keys() {
        let kb = small_kb();
        let city_in = kb.pred_id("p:cityIn").unwrap();
        let city = kb.node_id_by_iri("e:City").unwrap();
        assert!(kb.objects(city_in, city).is_empty());
        assert!(kb.subjects(city_in, city).is_empty());
    }

    #[test]
    fn object_frequencies() {
        let kb = small_kb();
        let city_in = kb.pred_id("p:cityIn").unwrap();
        let france = kb.node_id_by_iri("e:France").unwrap();
        let idx = kb.index(city_in);
        assert_eq!(idx.object_frequency(france), 2);
        assert_eq!(idx.num_facts(), 3);
        assert_eq!(idx.num_objects(), 2);
        let total: usize = idx.iter_object_frequencies().map(|(_, c)| c).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn backend_roundtrip_preserves_all_primitives() {
        let kb = small_kb();
        assert_eq!(kb.backend(), Backend::Csr);
        let succ = kb.clone().with_backend(Backend::Succinct);
        assert_eq!(succ.backend(), Backend::Succinct);
        // Converting back lands on CSR again.
        let back = succ.clone().with_backend(Backend::Csr);
        assert_eq!(back.backend(), Backend::Csr);

        for variant in [&succ, &back] {
            assert_eq!(variant.num_triples(), kb.num_triples());
            for p in kb.pred_ids() {
                let a = kb.index(p);
                let b = variant.index(p);
                assert_eq!(a.num_facts(), b.num_facts());
                assert_eq!(a.num_subjects(), b.num_subjects());
                assert_eq!(a.num_objects(), b.num_objects());
                for (s, objs) in a.iter_subjects() {
                    assert_eq!(objs.to_vec(), b.objects_of(s).to_vec());
                }
                for o in a.iter_objects() {
                    assert_eq!(a.subjects_of(o).to_vec(), b.subjects_of(o).to_vec());
                }
            }
            for n in kb.node_ids() {
                assert_eq!(
                    kb.preds_of_subject(n).to_vec(),
                    variant.preds_of_subject(n).to_vec()
                );
            }
        }
    }

    #[test]
    fn succinct_store_is_smaller_than_csr() {
        // A KB big enough for packed widths to pay off.
        let mut b = KbBuilder::new();
        for i in 0..400u32 {
            b.add_iri(
                &format!("e:s{i}"),
                &format!("p:r{}", i % 5),
                &format!("e:o{}", i % 97),
            );
            b.add_iri(&format!("e:s{i}"), "p:t", &format!("e:o{}", i % 13));
        }
        let kb = b.build().unwrap();
        let csr = kb.store_memory().total();
        let succ = kb
            .clone()
            .with_backend(Backend::Succinct)
            .store_memory()
            .total();
        assert!(
            succ * 10 <= csr * 6,
            "succinct {succ} bytes should be <= 60% of CSR {csr} bytes"
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Random fact lists: subjects/objects in 0..n, predicates in 0..p.
    fn arb_facts() -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
        proptest::collection::vec((any::<u8>(), 0u8..6, any::<u8>()), 1..120)
    }

    fn build(facts: &[(u8, u8, u8)]) -> KnowledgeBase {
        let mut b = KbBuilder::new();
        for &(s, p, o) in facts {
            b.add_iri(&format!("e:n{s}"), &format!("p:r{p}"), &format!("e:n{o}"));
        }
        b.build().expect("non-empty")
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// `objects(p, s)` and `subjects(p, o)` are exact inverses.
        #[test]
        fn prop_csr_directions_agree(facts in arb_facts()) {
            let kb = build(&facts);
            for p in kb.pred_ids() {
                let idx = kb.index(p);
                let mut forward = 0usize;
                for (s, objs) in idx.iter_subjects() {
                    forward += objs.len();
                    for o in objs {
                        prop_assert!(
                            idx.subjects_of(NodeId(o)).contains_sorted(s.0),
                            "missing reverse edge {s:?} -{p:?}-> {o}"
                        );
                    }
                }
                // Totals agree in both directions and with the fact count.
                let backward: usize =
                    idx.iter_object_frequencies().map(|(_, c)| c).sum();
                prop_assert_eq!(forward, backward);
                prop_assert_eq!(forward, idx.num_facts());
            }
        }

        /// Node frequencies equal mentions in the (deduplicated) facts.
        #[test]
        fn prop_node_frequencies_match_mentions(facts in arb_facts()) {
            let kb = build(&facts);
            // Recount from the store's own triples (post-dedup).
            let mut counts = vec![0u32; kb.num_nodes()];
            for t in kb.iter_triples() {
                counts[t.s.idx()] += 1;
                counts[t.o.idx()] += 1;
            }
            for n in kb.node_ids() {
                prop_assert_eq!(kb.node_frequency(n), counts[n.idx()]);
            }
            // Predicate frequencies sum to the triple count.
            let total: u32 = kb
                .pred_ids()
                .map(|p| kb.pred_frequency(p))
                .sum();
            prop_assert_eq!(total as usize, kb.num_triples());
        }

        /// `contains` agrees with membership in the CSR listings.
        #[test]
        fn prop_contains_is_consistent(facts in arb_facts()) {
            let kb = build(&facts);
            for &(s, p, o) in facts.iter().take(30) {
                let s = kb.node_id_by_iri(&format!("e:n{s}")).unwrap();
                let p = kb.pred_id(&format!("p:r{p}")).unwrap();
                let o = kb.node_id_by_iri(&format!("e:n{o}")).unwrap();
                prop_assert!(kb.contains(s, p, o));
                prop_assert!(kb.objects(p, s).contains_sorted(o.0));
                prop_assert!(kb.preds_of_subject(s).contains_sorted(p.0));
            }
        }

        /// Binary round trip is the identity on the triple multiset.
        #[test]
        fn prop_binfmt_roundtrip(facts in arb_facts()) {
            let kb = build(&facts);
            let bytes = crate::binfmt::write_bytes(&kb);
            let kb2 = crate::binfmt::read_bytes(&bytes, 0.0).unwrap();
            prop_assert_eq!(kb.num_triples(), kb2.num_triples());
            for t in kb.iter_triples() {
                let s = kb2.node_id_by_iri(kb.node_key(t.s)).unwrap();
                let p = kb2.pred_id(kb.pred_iri(t.p)).unwrap();
                let o = kb2.node_id_by_iri(kb.node_key(t.o)).unwrap();
                prop_assert!(kb2.contains(s, p, o));
            }
        }

        /// The succinct backend answers every primitive identically to the
        /// CSR backend it was converted from.
        #[test]
        fn prop_backends_agree_on_primitives(facts in arb_facts()) {
            let kb = build(&facts);
            let succ = kb.clone().with_backend(Backend::Succinct);
            for p in kb.pred_ids() {
                prop_assert_eq!(kb.index(p).num_facts(), succ.index(p).num_facts());
                prop_assert_eq!(
                    kb.index(p).num_subjects(), succ.index(p).num_subjects());
                prop_assert_eq!(
                    kb.index(p).num_objects(), succ.index(p).num_objects());
                for (s, objs) in kb.index(p).iter_subjects() {
                    prop_assert_eq!(objs.to_vec(), succ.objects(p, s).to_vec());
                }
                for (o, freq) in kb.index(p).iter_object_frequencies() {
                    prop_assert_eq!(freq, succ.index(p).object_frequency(o));
                    prop_assert_eq!(
                        kb.subjects(p, o).to_vec(), succ.subjects(p, o).to_vec());
                }
            }
            for n in kb.node_ids() {
                prop_assert_eq!(
                    kb.preds_of_subject(n).to_vec(),
                    succ.preds_of_subject(n).to_vec()
                );
            }
            // Spot-check membership on the raw facts.
            for &(s, p, o) in facts.iter().take(20) {
                let s = kb.node_id_by_iri(&format!("e:n{s}")).unwrap();
                let p = kb.pred_id(&format!("p:r{p}")).unwrap();
                let o = kb.node_id_by_iri(&format!("e:n{o}")).unwrap();
                prop_assert!(succ.contains(s, p, o));
            }
        }

        /// Inverse materialisation adds exactly the reversed facts for
        /// qualifying objects, and `p⁻¹(o, s) ⟺ p(s, o)` for them.
        #[test]
        fn prop_inverse_facts_mirror_base(facts in arb_facts()) {
            let mut b = KbBuilder::new();
            for &(s, p, o) in &facts {
                b.add_iri(
                    &format!("e:n{s}"),
                    &format!("p:r{p}"),
                    &format!("e:n{o}"),
                );
            }
            let kb = b.build_with_inverses(0.2).unwrap();
            for p in kb.pred_ids() {
                let Some(base) = kb.base_pred(p) else { continue };
                for (o, subs) in kb.index(p).iter_subjects() {
                    for s in subs {
                        prop_assert!(
                            kb.contains(NodeId(s), base, o),
                            "inverse fact without base fact"
                        );
                    }
                }
            }
        }
    }
}
