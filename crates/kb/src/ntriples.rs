//! N-Triples parsing and serialisation.
//!
//! Covers the subset of W3C N-Triples needed for KB dumps: IRIs in angle
//! brackets, blank nodes, plain/typed/language-tagged literals with the
//! standard string escapes, `#` comment lines, and blank lines.

use std::io::{BufRead, Write};

use crate::error::{KbError, Result};
use crate::store::KbBuilder;
use crate::term::Term;

/// Escapes a literal lexical form into `out` per N-Triples rules.
pub fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
}

/// Unescapes an N-Triples literal body (the part between the quotes).
pub fn unescape(s: &str) -> std::result::Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                if hex.len() != 4 {
                    return Err("truncated \\u escape".into());
                }
                let code =
                    u32::from_str_radix(&hex, 16).map_err(|_| format!("bad \\u escape: {hex}"))?;
                out.push(char::from_u32(code).ok_or_else(|| format!("invalid codepoint {code}"))?);
            }
            Some('U') => {
                let hex: String = chars.by_ref().take(8).collect();
                if hex.len() != 8 {
                    return Err("truncated \\U escape".into());
                }
                let code =
                    u32::from_str_radix(&hex, 16).map_err(|_| format!("bad \\U escape: {hex}"))?;
                out.push(char::from_u32(code).ok_or_else(|| format!("invalid codepoint {code}"))?);
            }
            Some(other) => return Err(format!("unknown escape \\{other}")),
            None => return Err("dangling backslash".into()),
        }
    }
    Ok(out)
}

/// Parses a literal in N-Triples surface form: `"lex"`, `"lex"@lang`, or
/// `"lex"^^<datatype>`.
pub fn parse_literal(s: &str) -> std::result::Result<Term, String> {
    if !s.starts_with('"') {
        return Err("literal must start with '\"'".into());
    }
    // Find the closing unescaped quote.
    let bytes = s.as_bytes();
    let mut i = 1;
    let mut end = None;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => {
                end = Some(i);
                break;
            }
            _ => i += 1,
        }
    }
    let end = end.ok_or("unterminated literal")?;
    let lexical = unescape(&s[1..end])?;
    let rest = &s[end + 1..];
    if rest.is_empty() {
        return Ok(Term::literal(lexical));
    }
    if let Some(lang) = rest.strip_prefix('@') {
        if lang.is_empty() {
            return Err("empty language tag".into());
        }
        return Ok(Term::lang_literal(lexical, lang));
    }
    if let Some(dt) = rest.strip_prefix("^^") {
        let dt = dt
            .strip_prefix('<')
            .and_then(|d| d.strip_suffix('>'))
            .ok_or("datatype must be an IRI in angle brackets")?;
        return Ok(Term::typed_literal(lexical, dt));
    }
    Err(format!("trailing garbage after literal: {rest}"))
}

/// A single parsed term plus the byte position right after it.
fn parse_term(line: &str, pos: usize) -> std::result::Result<(Term, usize), String> {
    let rest = &line[pos..];
    let trimmed = rest.trim_start();
    let skipped = rest.len() - trimmed.len();
    let start = pos + skipped;
    if let Some(after) = trimmed.strip_prefix('<') {
        let close = after.find('>').ok_or("unterminated IRI")?;
        let iri = &after[..close];
        return Ok((Term::iri(iri), start + 1 + close + 1));
    }
    if let Some(after) = trimmed.strip_prefix("_:") {
        let end = after
            .find(|c: char| c.is_whitespace())
            .unwrap_or(after.len());
        if end == 0 {
            return Err("empty blank node label".into());
        }
        return Ok((Term::blank(&after[..end]), start + 2 + end));
    }
    if trimmed.starts_with('"') {
        // Scan to the end of the literal token (closing quote + suffix).
        let bytes = trimmed.as_bytes();
        let mut i = 1;
        let mut close = None;
        while i < bytes.len() {
            match bytes[i] {
                b'\\' => i += 2,
                b'"' => {
                    close = Some(i);
                    break;
                }
                _ => i += 1,
            }
        }
        let close = close.ok_or("unterminated literal")?;
        let mut end = close + 1;
        let suffix = &trimmed[end..];
        if let Some(tag) = suffix.strip_prefix('@') {
            let stop = tag
                .find(|c: char| c.is_whitespace())
                .map(|i| i + 1)
                .unwrap_or(suffix.len());
            end += stop;
        } else if let Some(after_dt) = suffix.strip_prefix("^^") {
            if !after_dt.starts_with('<') {
                return Err("datatype must be an IRI".into());
            }
            let gt = after_dt.find('>').ok_or("unterminated datatype IRI")?;
            end += 2 + gt + 1;
        }
        let term = parse_literal(&trimmed[..end])?;
        return Ok((term, start + end));
    }
    Err(format!(
        "expected IRI, blank node, or literal at: {}",
        trimmed.chars().take(30).collect::<String>()
    ))
}

/// Parses one N-Triples line into `(subject, predicate, object)`.
/// Returns `Ok(None)` for blank and comment lines.
pub fn parse_line(line: &str) -> std::result::Result<Option<(Term, String, Term)>, String> {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return Ok(None);
    }
    let (s, pos) = parse_term(trimmed, 0)?;
    if s.is_literal() {
        return Err("subject cannot be a literal".into());
    }
    let (p, pos) = parse_term(trimmed, pos)?;
    let p_iri = match p {
        Term::Iri(iri) => iri,
        _ => return Err("predicate must be an IRI".into()),
    };
    let (o, pos) = parse_term(trimmed, pos)?;
    let tail = trimmed[pos..].trim();
    if tail != "." {
        return Err(format!("expected final '.', found: {tail:?}"));
    }
    Ok(Some((s, p_iri, o)))
}

/// Reads N-Triples from `reader` into a [`KbBuilder`].
pub fn read_into(reader: impl BufRead, builder: &mut KbBuilder) -> Result<usize> {
    let mut count = 0usize;
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        match parse_line(&line) {
            Ok(Some((s, p, o))) => {
                builder.add(&s, &p, &o);
                count += 1;
            }
            Ok(None) => {}
            Err(message) => {
                return Err(KbError::Parse {
                    line: i + 1,
                    message,
                })
            }
        }
    }
    Ok(count)
}

/// Parses a full N-Triples document from a string into a builder.
pub fn parse_document(doc: &str) -> Result<KbBuilder> {
    let mut b = KbBuilder::new();
    read_into(doc.as_bytes(), &mut b)?;
    Ok(b)
}

/// Serialises one triple as an N-Triples line (without the newline).
pub fn format_triple(s: &Term, p: &str, o: &Term) -> String {
    format!("{s} <{p}> {o} .")
}

/// Writes an entire KB as N-Triples (base triples only — materialised
/// inverses are derived data and are reconstructed on load).
pub fn write_kb(kb: &crate::store::KnowledgeBase, mut w: impl Write) -> Result<()> {
    for t in kb.iter_triples() {
        let s = kb.node_term(t.s);
        let o = kb.node_term(t.o);
        writeln!(w, "{}", format_triple(&s, kb.pred_iri(t.p), &o))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parses_simple_triple() {
        let (s, p, o) = parse_line("<http://x/a> <http://x/p> <http://x/b> .")
            .unwrap()
            .unwrap();
        assert_eq!(s, Term::iri("http://x/a"));
        assert_eq!(p, "http://x/p");
        assert_eq!(o, Term::iri("http://x/b"));
    }

    #[test]
    fn parses_literals() {
        let (_, _, o) = parse_line("<e:a> <p:name> \"Ada\" .").unwrap().unwrap();
        assert_eq!(o, Term::literal("Ada"));

        let (_, _, o) = parse_line("<e:a> <p:name> \"Ada\"@en .").unwrap().unwrap();
        assert_eq!(o, Term::lang_literal("Ada", "en"));

        let (_, _, o) =
            parse_line("<e:a> <p:age> \"36\"^^<http://www.w3.org/2001/XMLSchema#int> .")
                .unwrap()
                .unwrap();
        assert_eq!(
            o,
            Term::typed_literal("36", "http://www.w3.org/2001/XMLSchema#int")
        );
    }

    #[test]
    fn parses_escaped_literal() {
        let (_, _, o) = parse_line(r#"<e:a> <p:q> "he said \"hi\"\n" ."#)
            .unwrap()
            .unwrap();
        assert_eq!(o, Term::literal("he said \"hi\"\n"));
    }

    #[test]
    fn parses_blank_nodes() {
        let (s, _, o) = parse_line("_:b0 <p:q> _:b1 .").unwrap().unwrap();
        assert_eq!(s, Term::blank("b0"));
        assert_eq!(o, Term::blank("b1"));
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        assert_eq!(parse_line("").unwrap(), None);
        assert_eq!(parse_line("   ").unwrap(), None);
        assert_eq!(parse_line("# a comment").unwrap(), None);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_line("<e:a> <p:q> <e:b>").is_err()); // missing dot
        assert!(parse_line("\"lit\" <p:q> <e:b> .").is_err()); // literal subject
        assert!(parse_line("<e:a> _:b <e:b> .").is_err()); // blank predicate
        assert!(parse_line("<e:a> <p:q> \"unterminated .").is_err());
        assert!(parse_line("<e:a <p:q> <e:b> .").is_err()); // unterminated IRI
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(unescape(r"café").unwrap(), "café");
        assert_eq!(unescape(r"\U0001F600").unwrap(), "😀");
        assert!(unescape(r"\u00z9").is_err());
        assert!(unescape(r"\u00e").is_err());
        assert!(unescape(r"\q").is_err());
        assert!(unescape("dangling\\").is_err());
    }

    #[test]
    fn document_roundtrip() {
        let doc = "\
# cities
<e:Paris> <p:capitalOf> <e:France> .
<e:Paris> <p:label> \"Paris\"@fr .
_:b0 <p:near> <e:Paris> .
";
        let kb = parse_document(doc).unwrap().build().unwrap();
        assert_eq!(kb.num_triples(), 3);

        let mut out = Vec::new();
        write_kb(&kb, &mut out).unwrap();
        let kb2 = parse_document(std::str::from_utf8(&out).unwrap())
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(kb2.num_triples(), 3);

        // Semantic equality: every triple of kb appears in kb2.
        let set1: std::collections::BTreeSet<String> = {
            let mut v = Vec::new();
            write_kb(&kb, &mut v).unwrap();
            String::from_utf8(v)
                .unwrap()
                .lines()
                .map(String::from)
                .collect()
        };
        let set2: std::collections::BTreeSet<String> = {
            let mut v = Vec::new();
            write_kb(&kb2, &mut v).unwrap();
            String::from_utf8(v)
                .unwrap()
                .lines()
                .map(String::from)
                .collect()
        };
        assert_eq!(set1, set2);
    }

    #[test]
    fn parse_error_reports_line_number() {
        let doc = "<e:a> <p:q> <e:b> .\nthis is not a triple\n";
        match parse_document(doc) {
            Err(KbError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    proptest! {
        #[test]
        fn prop_escape_unescape_roundtrip(s in ".{0,100}") {
            let mut escaped = String::new();
            escape_into(&s, &mut escaped);
            prop_assert_eq!(unescape(&escaped).unwrap(), s);
        }

        #[test]
        fn prop_literal_surface_roundtrip(
            lex in "[a-zA-Z0-9 \"\\\\\n\t]{0,50}",
            lang in proptest::option::of("[a-z]{2}"),
        ) {
            let term = match lang {
                Some(l) => Term::lang_literal(lex.clone(), l),
                None => Term::literal(lex.clone()),
            };
            let surface = term.dict_key();
            prop_assert_eq!(parse_literal(&surface).unwrap(), term);
        }
    }
}
