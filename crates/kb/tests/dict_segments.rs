//! Differential and structure-sharing tests for the segmented dictionary.
//!
//! The segmented [`Dictionary`] must be observationally identical to the
//! obvious flat model (a `Vec` of entries plus a map), while its clones —
//! the epoch snapshots [`LiveKb`] publishes — share every sealed segment
//! by pointer. The proptest drives arbitrary intern/lookup traces across
//! several segment boundaries; the snapshot tests pin the O(batch)
//! publish claim down to pointer equality.

use std::collections::HashMap;

use proptest::prelude::*;
use remi_kb::dict::Dictionary;
use remi_kb::term::{Term, TermKind};
use remi_kb::{CompactionPolicy, KbBuilder, LiveKb};

/// The flat reference model: what a dictionary is, minus the segments.
#[derive(Default)]
struct FlatDict {
    entries: Vec<(String, TermKind)>,
    ids: HashMap<String, u32>,
}

impl FlatDict {
    fn intern_key(&mut self, key: &str, kind: TermKind) -> u32 {
        if let Some(&id) = self.ids.get(key) {
            return id;
        }
        let id = self.entries.len() as u32;
        self.entries.push((key.to_string(), kind));
        self.ids.insert(key.to_string(), id);
        id
    }
}

/// One step of an intern/lookup trace. Key space is kept small relative
/// to the trace length so re-interning existing keys is common.
fn key_for(step: u32) -> String {
    format!("e:key_{}", step % 2_800)
}

fn kind_for(step: u32) -> TermKind {
    match step % 3 {
        0 => TermKind::Iri,
        1 => TermKind::Literal,
        _ => TermKind::Blank,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Segmented ≡ flat on arbitrary traces that cross several segment
    /// boundaries: same ids, same key/kind per id, same iteration order,
    /// same misses.
    #[test]
    fn segmented_matches_flat_model(steps in proptest::collection::vec(0u32..10_000, 1..4_000)) {
        let mut seg = Dictionary::new();
        let mut flat = FlatDict::default();
        for &step in &steps {
            let key = key_for(step);
            let kind = kind_for(step);
            let a = seg.intern_key(&key, kind);
            let b = flat.intern_key(&key, kind);
            prop_assert_eq!(a, b);
        }
        prop_assert_eq!(seg.len(), flat.entries.len());
        for (id, (key, kind)) in flat.entries.iter().enumerate() {
            prop_assert_eq!(seg.key(id as u32), key.as_str());
            prop_assert_eq!(seg.kind(id as u32), *kind);
            prop_assert_eq!(seg.get_key(key), Some(id as u32));
        }
        let iterated: Vec<(u32, String, TermKind)> =
            seg.iter().map(|(i, k, t)| (i, k.to_string(), t)).collect();
        let expected: Vec<(u32, String, TermKind)> = flat
            .entries
            .iter()
            .enumerate()
            .map(|(i, (k, t))| (i as u32, k.clone(), *t))
            .collect();
        prop_assert_eq!(iterated, expected);
        prop_assert_eq!(seg.get_key("e:never_interned"), None);
    }

    /// Ids handed out before a seal stay valid afterwards: a prefix
    /// re-intern of every key returns its original id.
    #[test]
    fn ids_are_stable_across_seals(extra in 0usize..1_500) {
        let mut d = Dictionary::new();
        let first: Vec<u32> = (0..Dictionary::SEGMENT_LEN)
            .map(|i| d.intern_key(&format!("e:stable_{i}"), TermKind::Iri))
            .collect();
        for i in 0..extra {
            d.intern_key(&format!("e:extra_{i}"), TermKind::Iri);
        }
        for (i, &id) in first.iter().enumerate() {
            let key = format!("e:stable_{i}");
            prop_assert_eq!(d.intern_key(&key, TermKind::Iri), id);
            prop_assert_eq!(d.key(id), key.as_str());
        }
    }
}

/// A live KB whose node dictionary spans several sealed segments.
fn live_kb_with_sealed_segments() -> LiveKb {
    let mut b = KbBuilder::new();
    for i in 0..3_000 {
        b.add_iri(
            &format!("e:n{i}"),
            "p:linked",
            &format!("e:n{}", (i + 1) % 3_000),
        );
    }
    LiveKb::with_policy(
        b.build().unwrap(),
        CompactionPolicy {
            min_delta: usize::MAX, // keep publishes pure overlay updates
            ..CompactionPolicy::default()
        },
    )
}

fn sealed_ptrs(kb: &remi_kb::KnowledgeBase) -> Vec<usize> {
    kb.node_dict().sealed_segment_ptrs().collect()
}

/// Consecutive epoch snapshots share *all* sealed node-dictionary
/// segments by pointer — publish copies the tail, never the archive.
#[test]
fn consecutive_snapshots_share_sealed_segments() {
    let live = live_kb_with_sealed_segments();
    let before = live.snapshot();
    assert!(
        sealed_ptrs(&before.kb).len() >= 2,
        "need a multi-segment dictionary for the sharing claim"
    );
    live.append(vec![(
        Term::iri("e:fresh_subject".to_string()),
        "p:linked".to_string(),
        Term::iri("e:n0".to_string()),
    )]);
    let after = live.snapshot();
    assert!(
        after.epoch > before.epoch,
        "append must publish a new epoch"
    );
    assert_eq!(
        sealed_ptrs(&before.kb),
        sealed_ptrs(&after.kb),
        "sealed segments must be pointer-shared across epochs"
    );
}

/// The publish cost of a one-new-key batch: the sealed archive is
/// untouched (no segment is copied or resealed), only the tail moves.
#[test]
fn single_key_publish_leaves_sealed_archive_untouched() {
    let live = live_kb_with_sealed_segments();
    let before = live.snapshot();
    let ptrs_before = sealed_ptrs(&before.kb);
    for round in 0..5 {
        live.append(vec![(
            Term::iri(format!("e:tail_only_{round}")),
            "p:linked".to_string(),
            Term::iri("e:n1".to_string()),
        )]);
        let snap = live.snapshot();
        assert_eq!(
            sealed_ptrs(&snap.kb),
            ptrs_before,
            "round {round}: a tail-sized batch must not touch sealed segments"
        );
    }
}

/// Dictionary clones (how snapshots are made) share sealed segments and
/// report identical heap footprints.
#[test]
fn clone_shares_segments_and_heap_accounting() {
    let mut d = Dictionary::new();
    for i in 0..(Dictionary::SEGMENT_LEN * 2 + 7) {
        d.intern_key(&format!("e:c{i}"), TermKind::Iri);
    }
    let c = d.clone();
    let a: Vec<usize> = d.sealed_segment_ptrs().collect();
    let b: Vec<usize> = c.sealed_segment_ptrs().collect();
    assert_eq!(a, b, "clone must Arc-share every sealed segment");
    assert_eq!(d.heap_bytes(), c.heap_bytes());
}
