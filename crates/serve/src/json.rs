//! Hand-rolled JSON: escaping, a small writer, and a minimal recursive
//! parser for request bodies.
//!
//! No serde in the build image, and the API's payloads are small and
//! flat, so this module carries the whole (de)serialisation surface: the
//! writer produces deterministic, canonical output (field order is the
//! caller's call order, no whitespace) — a property the serve cache and
//! the byte-identity integration tests rely on.

use std::fmt::Write as _;

/// Escapes `s` into `out` per RFC 8259 (double quotes included).
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// An escaped, quoted JSON string.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    escape_into(&mut out, s);
    out
}

/// Incremental writer for one JSON object: `{"a":1,"b":"x"}`.
#[derive(Debug)]
pub struct JsonObject {
    buf: String,
    first: bool,
}

impl Default for JsonObject {
    fn default() -> Self {
        Self::new()
    }
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> JsonObject {
        JsonObject {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, name: &str) -> &mut String {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        escape_into(&mut self.buf, name);
        self.buf.push(':');
        &mut self.buf
    }

    /// Adds a string field.
    pub fn field_str(mut self, name: &str, value: &str) -> Self {
        let buf = self.key(name);
        escape_into(buf, value);
        self
    }

    /// Adds an unsigned integer field.
    pub fn field_u64(mut self, name: &str, value: u64) -> Self {
        let buf = self.key(name);
        let _ = write!(buf, "{value}");
        self
    }

    /// Adds a boolean field.
    pub fn field_bool(mut self, name: &str, value: bool) -> Self {
        let buf = self.key(name);
        buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Adds a field whose value is already-serialised JSON.
    pub fn field_raw(mut self, name: &str, raw: &str) -> Self {
        let buf = self.key(name);
        buf.push_str(raw);
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Serialises a sequence of already-serialised JSON values as an array.
pub fn array_raw<I: IntoIterator<Item = String>>(items: I) -> String {
    let mut buf = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(&item);
    }
    buf.push(']');
    buf
}

/// Serialises a sequence of strings as a JSON array of strings.
pub fn array_str<'a, I: IntoIterator<Item = &'a str>>(items: I) -> String {
    array_raw(items.into_iter().map(escape))
}

// ---------------------------------------------------------------------------
// Parsing

/// A parsed JSON value (request bodies only — numbers are kept as `f64`).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, fields in document order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects.
    pub fn get(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(n, _)| n == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if representable.
    pub fn as_usize(&self) -> Option<usize> {
        match *self {
            Value::Number(n) if n >= 0.0 && n.fract() == 0.0 && n <= u32::MAX as f64 => {
                Some(n as usize)
            }
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Maximum nesting depth accepted by [`parse`].
const MAX_DEPTH: usize = 32;

/// Parses one JSON document (UTF-8 bytes), rejecting trailing garbage.
pub fn parse(bytes: &[u8]) -> Result<Value, String> {
    let text = std::str::from_utf8(bytes).map_err(|_| "body is not UTF-8".to_string())?;
    let mut p = Parser {
        chars: text.char_indices().peekable(),
        text,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    match p.chars.next() {
        None => Ok(value),
        Some((i, _)) => Err(format!("trailing characters at byte {i}")),
    }
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    text: &'a str,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some((_, ' ' | '\t' | '\n' | '\r'))) {
            self.chars.next();
        }
    }

    fn expect_char(&mut self, c: char) -> Result<(), String> {
        match self.chars.next() {
            Some((_, got)) if got == c => Ok(()),
            other => Err(format!("expected {c:?}, found {other:?}")),
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".to_string());
        }
        self.skip_ws();
        match self.chars.peek().copied() {
            Some((_, '{')) => self.object(depth),
            Some((_, '[')) => self.array(depth),
            Some((_, '"')) => Ok(Value::String(self.string()?)),
            Some((_, 't')) => self.literal("true", Value::Bool(true)),
            Some((_, 'f')) => self.literal("false", Value::Bool(false)),
            Some((_, 'n')) => self.literal("null", Value::Null),
            Some((_, c)) if c == '-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?}")),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        for expected in word.chars() {
            self.expect_char(expected)?;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.chars.peek().map(|&(i, _)| i).unwrap_or(0);
        let mut end = start;
        while let Some(&(i, c)) = self.chars.peek() {
            if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E') {
                end = i + c.len_utf8();
                self.chars.next();
            } else {
                break;
            }
        }
        let raw = self.text.get(start..end).unwrap_or("");
        raw.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| format!("malformed number {raw:?}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_char('"')?;
        let mut out = String::new();
        loop {
            match self.chars.next() {
                Some((_, '"')) => return Ok(out),
                Some((_, '\\')) => match self.chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, '/')) => out.push('/'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'b')) => out.push('\u{8}'),
                    Some((_, 'f')) => out.push('\u{c}'),
                    Some((_, 'u')) => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let (_, c) = self.chars.next().ok_or("truncated \\u escape")?;
                            code = code * 16
                                + c.to_digit(16).ok_or_else(|| format!("bad hex {c:?}"))?;
                        }
                        // Surrogates are rejected rather than paired — the
                        // API's identifiers are plain IRIs.
                        out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some((_, c)) if (c as u32) >= 0x20 => out.push(c),
                other => return Err(format!("bad string character {other:?}")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, String> {
        self.expect_char('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if matches!(self.chars.peek(), Some((_, ']'))) {
            self.chars.next();
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.chars.next() {
                Some((_, ',')) => continue,
                Some((_, ']')) => return Ok(Value::Array(items)),
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, String> {
        self.expect_char('{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if matches!(self.chars.peek(), Some((_, '}'))) {
            self.chars.next();
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let name = self.string()?;
            self.skip_ws();
            self.expect_char(':')?;
            let value = self.value(depth + 1)?;
            fields.push((name, value));
            self.skip_ws();
            match self.chars.next() {
                Some((_, ',')) => continue,
                Some((_, '}')) => return Ok(Value::Object(fields)),
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_specials() {
        assert_eq!(escape("plain"), "\"plain\"");
        assert_eq!(escape("a\"b\\c"), r#""a\"b\\c""#);
        assert_eq!(escape("line\nbreak\ttab"), r#""line\nbreak\ttab""#);
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
        assert_eq!(escape("übermaß€"), "\"übermaß€\"");
    }

    #[test]
    fn object_writer_is_canonical() {
        let json = JsonObject::new()
            .field_str("name", "e:X \"quoted\"")
            .field_u64("count", 42)
            .field_bool("ok", true)
            .field_raw("list", &array_str(["a", "b"]))
            .finish();
        assert_eq!(
            json,
            r#"{"name":"e:X \"quoted\"","count":42,"ok":true,"list":["a","b"]}"#
        );
        assert_eq!(JsonObject::new().finish(), "{}");
    }

    #[test]
    fn parser_roundtrips_writer_output() {
        let json = JsonObject::new()
            .field_str("entity", "e:Person_0")
            .field_u64("k", 3)
            .field_raw("entities", &array_str(["e:A", "e:B"]))
            .finish();
        let v = parse(json.as_bytes()).unwrap();
        assert_eq!(v.get("entity").unwrap().as_str(), Some("e:Person_0"));
        assert_eq!(v.get("k").unwrap().as_usize(), Some(3));
        let arr = v.get("entities").unwrap().as_array().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[1].as_str(), Some("e:B"));
    }

    #[test]
    fn parser_accepts_the_grammar() {
        for (text, expected) in [
            ("null", Value::Null),
            (" true ", Value::Bool(true)),
            ("-12.5e2", Value::Number(-1250.0)),
            (r#""\u20ac a\/b""#, Value::String("€ a/b".to_string())),
            ("[]", Value::Array(vec![])),
            ("{}", Value::Object(vec![])),
            (
                "[1, [2, {\"a\": null}]]",
                Value::Array(vec![
                    Value::Number(1.0),
                    Value::Array(vec![
                        Value::Number(2.0),
                        Value::Object(vec![("a".to_string(), Value::Null)]),
                    ]),
                ]),
            ),
        ] {
            assert_eq!(parse(text.as_bytes()).unwrap(), expected, "{text}");
        }
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for text in [
            "",
            "{",
            "}",
            "[1,]",
            "{\"a\"}",
            "{\"a\":}",
            "1 2",
            "\"unterminated",
            "nul",
            "{\"a\":1,}",
            "\"\\q\"",
            "--1",
            "\"\\ud800\"",
        ] {
            assert!(parse(text.as_bytes()).is_err(), "{text:?} parsed");
        }
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(deep.as_bytes()).is_err(), "depth limit");
        assert!(parse(&[0xff, 0xfe]).is_err(), "non-UTF-8");
    }

    #[test]
    fn as_usize_guards_range_and_fraction() {
        assert_eq!(Value::Number(3.0).as_usize(), Some(3));
        assert_eq!(Value::Number(3.5).as_usize(), None);
        assert_eq!(Value::Number(-1.0).as_usize(), None);
        assert_eq!(Value::Number(1e18).as_usize(), None);
        assert_eq!(Value::String("3".into()).as_usize(), None);
    }
}
