//! A minimal incremental HTTP/1.1 request parser and response writer.
//!
//! The build image has no async runtime and no registry access, so this is
//! the whole HTTP stack: enough of RFC 9112 to serve the JSON API over
//! keep-alive connections, with hard bounds on header and body sizes so a
//! misbehaving client cannot grow server memory.
//!
//! The parser is *incremental*: bytes are appended as they arrive from the
//! socket and [`RequestParser::try_parse`] either yields a complete
//! [`Request`], asks for more bytes, or rejects the stream with the HTTP
//! status the connection should answer before closing (400 for malformed
//! input, 413 for oversized input, 505 for unsupported versions).

use std::fmt::Write as _;

/// Upper bound on the request line + headers section.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// Upper bound on a request body.
pub const MAX_BODY_BYTES: usize = 256 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Upper-cased method token (`GET`, `POST`, ...).
    pub method: String,
    /// Percent-decoded path, always starting with `/`.
    pub path: String,
    /// Decoded `key=value` query parameters in order of appearance.
    pub query: Vec<(String, String)>,
    /// Header `(name, value)` pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
}

impl Request {
    /// The first value of a (lower-case) header name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The first value of a query parameter.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a byte stream was rejected: the status (and human-readable detail)
/// the connection should answer before closing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// HTTP status code to answer with (400, 413, or 505).
    pub status: u16,
    /// Short description for the error body.
    pub message: String,
}

impl ParseError {
    fn bad(message: impl Into<String>) -> ParseError {
        ParseError {
            status: 400,
            message: message.into(),
        }
    }

    fn too_large(message: impl Into<String>) -> ParseError {
        ParseError {
            status: 413,
            message: message.into(),
        }
    }
}

/// One step of incremental parsing.
#[derive(Debug)]
pub enum Parsed {
    /// A full request was parsed; the parser consumed its bytes and is
    /// ready for the next pipelined request.
    Complete(Request),
    /// The buffered bytes form only a prefix of a request.
    NeedMore,
}

/// Incremental request parser holding the connection's receive buffer.
///
/// Feed raw socket bytes with [`push`](Self::push), then call
/// [`try_parse`](Self::try_parse) until it returns
/// [`Parsed::NeedMore`]. Parsed requests are drained from the front of
/// the buffer, so pipelined requests on one connection work naturally.
#[derive(Debug, Default)]
pub struct RequestParser {
    buf: Vec<u8>,
}

impl RequestParser {
    /// A parser with an empty buffer.
    pub fn new() -> RequestParser {
        RequestParser::default()
    }

    /// Appends raw bytes received from the socket.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Number of buffered, not-yet-parsed bytes.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Attempts to parse one complete request from the front of the
    /// buffer.
    pub fn try_parse(&mut self) -> Result<Parsed, ParseError> {
        // Locate the end of the head section (CRLF CRLF).
        let Some(head_end) = find_subslice(&self.buf, b"\r\n\r\n") else {
            if self.buf.len() > MAX_HEAD_BYTES {
                return Err(ParseError::too_large("request head exceeds 8 KiB"));
            }
            return Ok(Parsed::NeedMore);
        };
        if head_end + 4 > MAX_HEAD_BYTES {
            return Err(ParseError::too_large("request head exceeds 8 KiB"));
        }
        let head = self
            .buf
            .get(..head_end)
            .ok_or_else(|| ParseError::bad("malformed request head"))?;
        if !head.is_ascii() {
            return Err(ParseError::bad("non-ASCII bytes in request head"));
        }
        let head = std::str::from_utf8(head)
            .map_err(|_| ParseError::bad("non-ASCII bytes in request head"))?;
        let mut lines = head.split("\r\n");
        let request_line = lines.next().unwrap_or("");
        let mut parts = request_line.split(' ');
        let (Some(method), Some(target), Some(version)) =
            (parts.next(), parts.next(), parts.next())
        else {
            return Err(ParseError::bad("malformed request line"));
        };
        if parts.next().is_some() || method.is_empty() || target.is_empty() {
            return Err(ParseError::bad("malformed request line"));
        }
        if !method.bytes().all(|b| b.is_ascii_uppercase()) {
            return Err(ParseError::bad("malformed method token"));
        }
        let http11 = match version {
            "HTTP/1.1" => true,
            "HTTP/1.0" => false,
            _ => {
                return Err(ParseError {
                    status: 505,
                    message: format!("unsupported version {version}"),
                })
            }
        };

        let mut headers = Vec::new();
        for line in lines {
            let Some((name, value)) = line.split_once(':') else {
                return Err(ParseError::bad(format!("malformed header line {line:?}")));
            };
            if name.is_empty() || name.contains(' ') {
                return Err(ParseError::bad(format!("malformed header name {name:?}")));
            }
            headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        }

        let content_length = match header_value(&headers, "content-length") {
            Some(v) => v
                .parse::<usize>()
                .map_err(|_| ParseError::bad("malformed content-length"))?,
            None => 0,
        };
        if header_value(&headers, "transfer-encoding").is_some() {
            // Chunked bodies are out of scope for this API; reject rather
            // than desynchronise the connection.
            return Err(ParseError::bad("transfer-encoding is not supported"));
        }
        if content_length > MAX_BODY_BYTES {
            return Err(ParseError::too_large("request body exceeds 256 KiB"));
        }
        let body_start = head_end + 4;
        if self.buf.len() < body_start + content_length {
            return Ok(Parsed::NeedMore);
        }
        let body = self
            .buf
            .get(body_start..body_start + content_length)
            .ok_or_else(|| ParseError::bad("truncated request body"))?
            .to_vec();

        let connection = header_value(&headers, "connection").map(str::to_ascii_lowercase);
        let keep_alive = match connection.as_deref() {
            Some("close") => false,
            Some("keep-alive") => true,
            _ => http11, // HTTP/1.1 defaults to keep-alive, 1.0 to close
        };

        let (raw_path, raw_query) = match target.split_once('?') {
            Some((p, q)) => (p, Some(q)),
            None => (target, None),
        };
        if !raw_path.starts_with('/') {
            return Err(ParseError::bad("request target must be absolute"));
        }
        let path =
            percent_decode(raw_path, false).ok_or_else(|| ParseError::bad("malformed path"))?;
        let mut query = Vec::new();
        if let Some(raw_query) = raw_query {
            for pair in raw_query.split('&').filter(|p| !p.is_empty()) {
                let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
                let k =
                    percent_decode(k, true).ok_or_else(|| ParseError::bad("malformed query"))?;
                let v =
                    percent_decode(v, true).ok_or_else(|| ParseError::bad("malformed query"))?;
                query.push((k, v));
            }
        }

        let request = Request {
            method: method.to_string(),
            path,
            query,
            headers,
            body,
            keep_alive,
        };
        self.buf.drain(..body_start + content_length);
        Ok(Parsed::Complete(request))
    }
}

/// First value of a header in a parsed header list.
fn header_value<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

/// Finds the first occurrence of `needle` in `haystack` (shared with the
/// response reader in [`crate::client`]).
pub(crate) fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack
        .windows(needle.len())
        .position(|window| window == needle)
}

/// Percent-decodes a path or query component; `plus_is_space` applies the
/// `application/x-www-form-urlencoded` rule. Returns `None` on truncated
/// or non-hex escapes and on invalid UTF-8.
pub fn percent_decode(s: &str, plus_is_space: bool) -> Option<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        // lint:allow(panic-in-serve): `i < bytes.len()` is the loop guard, so the index is in bounds
        match bytes[i] {
            b'%' => {
                let hi = hex_digit(*bytes.get(i + 1)?)?;
                let lo = hex_digit(*bytes.get(i + 2)?)?;
                out.push(hi * 16 + lo);
                i += 3;
            }
            b'+' if plus_is_space => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).ok()
}

fn hex_digit(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// Percent-encodes a path segment so entity IRIs survive a URL round
/// trip (everything outside RFC 3986 `unreserved` plus `:` is escaped).
pub fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for &b in s.as_bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'.' | b'_' | b'~' | b':' => {
                out.push(b as char)
            }
            _ => {
                let _ = write!(out, "%{b:02X}");
            }
        }
    }
    out
}

/// The canonical reason phrase for the status codes this server emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Content Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Serialises a complete JSON response: status line, standard headers,
/// any extra headers, `Content-Length`, and the body.
pub fn write_response(
    status: u16,
    extra_headers: &[(&str, &str)],
    body: &str,
    keep_alive: bool,
) -> Vec<u8> {
    write_response_typed(status, "application/json", extra_headers, body, keep_alive)
}

/// [`write_response`] with an explicit `Content-Type` — the `/v1/metrics`
/// endpoint answers Prometheus text exposition, not JSON.
pub fn write_response_typed(
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &str,
    keep_alive: bool,
) -> Vec<u8> {
    let mut head = String::with_capacity(128 + body.len());
    let _ = write!(head, "HTTP/1.1 {status} {}\r\n", reason_phrase(status));
    let _ = write!(head, "Content-Type: {content_type}\r\n");
    let _ = write!(head, "Content-Length: {}\r\n", body.len());
    let _ = write!(
        head,
        "Connection: {}\r\n",
        if keep_alive { "keep-alive" } else { "close" }
    );
    for (name, value) in extra_headers {
        let _ = write!(head, "{name}: {value}\r\n");
    }
    head.push_str("\r\n");
    head.push_str(body);
    head.into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_one(bytes: &[u8]) -> Result<Request, ParseError> {
        let mut p = RequestParser::new();
        p.push(bytes);
        match p.try_parse()? {
            Parsed::Complete(r) => Ok(r),
            Parsed::NeedMore => panic!("expected a complete request"),
        }
    }

    #[test]
    fn parses_a_simple_get() {
        let r = parse_one(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/healthz");
        assert!(r.query.is_empty());
        assert!(r.keep_alive);
        assert_eq!(r.header("host"), Some("x"));
    }

    #[test]
    fn parses_query_and_percent_escapes() {
        let r = parse_one(b"GET /describe/e%3APerson_0?k=3&backend=csr&x=a+b HTTP/1.1\r\n\r\n")
            .unwrap();
        assert_eq!(r.path, "/describe/e:Person_0");
        assert_eq!(r.query_param("k"), Some("3"));
        assert_eq!(r.query_param("backend"), Some("csr"));
        assert_eq!(r.query_param("x"), Some("a b"));
    }

    #[test]
    fn parses_post_with_body_and_fragmentation() {
        let raw = b"POST /describe HTTP/1.1\r\nContent-Length: 11\r\n\r\nhello world";
        // Feed one byte at a time: every prefix must be NeedMore.
        let mut p = RequestParser::new();
        for (i, &b) in raw.iter().enumerate() {
            p.push(&[b]);
            match p.try_parse().unwrap() {
                Parsed::Complete(r) => {
                    assert_eq!(i, raw.len() - 1, "completed early at byte {i}");
                    assert_eq!(r.body, b"hello world");
                    assert_eq!(p.buffered(), 0);
                    return;
                }
                Parsed::NeedMore => assert!(i < raw.len() - 1, "never completed"),
            }
        }
        panic!("request never completed");
    }

    #[test]
    fn pipelined_requests_parse_in_order() {
        let mut p = RequestParser::new();
        p.push(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n");
        let Parsed::Complete(a) = p.try_parse().unwrap() else {
            panic!("first request incomplete")
        };
        let Parsed::Complete(b) = p.try_parse().unwrap() else {
            panic!("second request incomplete")
        };
        assert_eq!((a.path.as_str(), b.path.as_str()), ("/a", "/b"));
    }

    #[test]
    fn connection_semantics() {
        assert!(parse_one(b"GET / HTTP/1.1\r\n\r\n").unwrap().keep_alive);
        assert!(!parse_one(b"GET / HTTP/1.0\r\n\r\n").unwrap().keep_alive);
        assert!(
            !parse_one(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
                .unwrap()
                .keep_alive
        );
        assert!(
            parse_one(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
                .unwrap()
                .keep_alive
        );
    }

    #[test]
    fn malformed_requests_are_400() {
        for raw in [
            b"GET\r\n\r\n".as_slice(),
            b"GET / HTTP/1.1 extra\r\n\r\n",
            b"get / HTTP/1.1\r\n\r\n",
            b"GET / HTTP/1.1\r\nbad header\r\n\r\n",
            b"GET / HTTP/1.1\r\nContent-Length: ten\r\n\r\n",
            b"GET /%zz HTTP/1.1\r\n\r\n",
            b"GET relative HTTP/1.1\r\n\r\n",
            b"GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
        ] {
            let err = parse_one(raw).unwrap_err();
            assert_eq!(
                err.status,
                400,
                "{:?} → {err:?}",
                String::from_utf8_lossy(raw)
            );
        }
    }

    #[test]
    fn unsupported_version_is_505() {
        assert_eq!(
            parse_one(b"GET / HTTP/2.0\r\n\r\n").unwrap_err().status,
            505
        );
    }

    #[test]
    fn oversized_head_and_body_are_413() {
        let mut raw = b"GET / HTTP/1.1\r\nX-Pad: ".to_vec();
        raw.resize(raw.len() + MAX_HEAD_BYTES, b'a');
        raw.extend_from_slice(b"\r\n\r\n");
        assert_eq!(parse_one(&raw).unwrap_err().status, 413);

        let raw = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert_eq!(parse_one(raw.as_bytes()).unwrap_err().status, 413);
    }

    #[test]
    fn percent_codec_roundtrip() {
        for s in ["e:Person_0", "e:Städte/α?β&γ", "plain", "a b+c"] {
            let enc = percent_encode(s);
            assert_eq!(percent_decode(&enc, false).as_deref(), Some(s), "{enc}");
        }
        assert_eq!(percent_decode("%e2%82%ac", false).as_deref(), Some("€"));
        assert!(percent_decode("%", false).is_none());
        assert!(percent_decode("%f", false).is_none());
        assert!(percent_decode("%gg", false).is_none());
        assert!(percent_decode("%ff%ff", false).is_none(), "invalid UTF-8");
    }

    #[test]
    fn response_writer_emits_valid_http() {
        let bytes = write_response(200, &[("X-Remi-Cache", "hit")], "{\"a\":1}", true);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 7\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.contains("X-Remi-Cache: hit\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"a\":1}"));
    }
}
