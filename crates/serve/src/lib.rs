//! `remi-serve` — an embedded HTTP/1.1 service layer that turns the REMI
//! miner into a queryable online system.
//!
//! The batch tools re-load the KB on every invocation; this crate keeps a
//! [`KnowledgeBase`] resident (either storage backend), answers
//! describe/summarize queries concurrently, and caches rendered responses
//! so repeated queries skip mining entirely. Everything is hand-rolled on
//! `std::net` — the build image has no async runtime and no registry —
//! and all concurrency runs as scoped tasks on the process-wide
//! [`remi_pool::global`] executor:
//!
//! * [`http`] — incremental request parser + response writer, with hard
//!   bounds on head/body sizes (400/404/405/413/500/503 mapping).
//! * [`json`] — escaping, a canonical writer, and a minimal body parser.
//! * [`cache`] — the sharded LRU response cache keyed by
//!   `(request, KB fingerprint)` with hit/miss/eviction counters.
//! * [`client`] — the tiny blocking client used by tests, the example,
//!   and the load generator.
//! * [`serve`] / [`ServerHandle`] — the server itself: keep-alive
//!   connections, admission control (bounded in-flight work with 503
//!   load-shedding), and graceful drain on shutdown.
//!
//! # The API
//!
//! Routing is table-driven (`router.rs`): every endpoint is exactly one
//! `(method, path, admission) → handler` row, mounted at its canonical
//! versioned path `/v1/…` with the legacy unprefixed path kept as an
//! alias, and `405` responses derive their `Allow` header from the
//! table. Parameter parsing and clamping go through one typed extractor
//! (`params.rs`), so every endpoint shares the same limits and the same
//! `{"error": …, "param": …}` failure envelope.
//!
//! | route                        | answer                                   |
//! |------------------------------|------------------------------------------|
//! | `GET /v1/healthz`            | liveness (exempt from request shedding)  |
//! | `GET /v1/stats`              | KB + backend + cache + server metrics    |
//! | `GET /v1/metrics`            | Prometheus text exposition (`remi-obs`)  |
//! | `GET /v1/describe/{entity}`  | best RE(s); `?k=&threads=&backend=`      |
//! | `POST /v1/describe`          | batched entity list, one shared miner    |
//! | `GET /v1/summarize/{entity}` | top-k facts; `?k=&method=&backend=`      |
//! | `POST /v1/ingest`            | append N-Triples (atomic epoch publish)  |
//! | `POST /v1/query`             | triple patterns + limit → variable rows  |
//!
//! Mining and query responses are deterministic byte-for-byte: the same
//! request on the same KB renders the same body whether it was computed,
//! cached (the `X-Remi-Cache` header says which), or answered by the CSR
//! or the succinct backend.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod http;
pub mod json;

mod events;
mod params;
mod query;
mod router;

pub use query::query_body;

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use remi_obs::{
    series, Clock as _, Counter, Gauge, Histogram, MonoClock, PromText, Recorder, Registry, Span,
};

use remi_core::topk::describe_top_k;
use remi_core::{Remi, RemiConfig};
use remi_kb::delta::Snapshot;
use remi_kb::pagerank::{pagerank, PageRank, PageRankConfig};
use remi_kb::{Backend, CompactionPolicy, KnowledgeBase, LiveKb, NodeId};
use remi_pool::CancelToken;

use cache::{CacheKey, ResponseCache};
use http::{Parsed, Request, RequestParser};
use json::JsonObject;

/// How long an idle keep-alive connection is held before the server closes
/// it (also the shutdown-drain latency bound for idle connections).
const IDLE_TIMEOUT: Duration = Duration::from_secs(5);

/// Socket read timeout: the granularity at which blocked connection tasks
/// re-check the shutdown flag and the idle deadline.
const READ_TIMEOUT: Duration = Duration::from_millis(50);

/// Socket write timeout: bounds how long a non-reading client can pin a
/// worker mid-response before the connection is dropped.
const WRITE_TIMEOUT: Duration = Duration::from_secs(10);

/// Hard cap on one batched describe.
const MAX_BATCH: usize = 64;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Storage backend to serve from (`None` keeps the KB's current one).
    /// The other backend is materialised lazily when a request asks for it
    /// with `?backend=`.
    pub backend: Option<Backend>,
    /// Response-cache capacity in entries (0 disables caching).
    pub cache_entries: usize,
    /// Admission-control watermark: in-flight mining requests beyond this
    /// answer `503` instead of queueing unboundedly. Total open
    /// connections (idle parked ones included) are capped at 4× this
    /// (min 8), bounding file descriptors without shedding cheap idle
    /// keep-alive clients.
    pub max_inflight: usize,
    /// Default P-REMI task count per describe request (`?threads=`
    /// overrides per request).
    pub threads: usize,
    /// Background-compaction trigger: once `POST /ingest` has grown the
    /// delta overlay past this many triples, a compaction task is
    /// scheduled on the shared pool to fold it into a fresh base.
    pub compact_min_delta: usize,
    /// Requests slower than this many milliseconds bump
    /// `remi_http_slow_requests_total` and log a structured one-line
    /// phase breakdown — plus the flight recorder's tail — on stderr.
    /// `None` disables the log; `Some(0)` logs every request (the test
    /// hook).
    pub slow_request_ms: Option<u64>,
    /// Flight-recorder ring capacity in events (rounded up to a power of
    /// two, minimum 8). Bounds `GET /v1/debug/events` responses and the
    /// recorder's memory no matter how long the server runs.
    pub event_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            backend: None,
            cache_entries: 4096,
            max_inflight: 64,
            threads: remi_pool::configured_threads(),
            compact_min_delta: CompactionPolicy::default().min_delta,
            slow_request_ms: None,
            event_capacity: 1024,
        }
    }
}

/// Fingerprint of a KB's logical content (re-exported from
/// [`remi_kb::content_fingerprint`]). Two KBs holding the same triples
/// fingerprint identically regardless of storage backend, so cached
/// responses are shared across backends and survive compaction; every
/// ingested batch rotates the value.
pub fn kb_fingerprint(kb: &KnowledgeBase) -> u64 {
    remi_kb::content_fingerprint(kb)
}

// ---------------------------------------------------------------------------
// Response rendering (pure functions over the KB — the integration tests
// call these directly to assert HTTP responses are byte-identical to
// library output)

/// A rendering failure: the HTTP status and error message to answer with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// HTTP status (400, 404, or 503 for cancelled work).
    pub status: u16,
    /// Human-readable message (becomes the `error` field).
    pub message: String,
    /// The offending request parameter, when the failure is attributable
    /// to one (becomes the `param` field of the error envelope).
    pub param: Option<&'static str>,
}

impl ApiError {
    fn not_found(what: impl std::fmt::Display) -> ApiError {
        ApiError {
            status: 404,
            message: format!("entity not found in KB: {what}"),
            param: None,
        }
    }

    fn bad(message: impl Into<String>) -> ApiError {
        ApiError {
            status: 400,
            message: message.into(),
            param: None,
        }
    }

    /// A `400` attributable to one named request parameter.
    pub(crate) fn bad_param(param: &'static str, message: impl Into<String>) -> ApiError {
        ApiError {
            status: 400,
            message: message.into(),
            param: Some(param),
        }
    }
}

/// The body of an error response.
pub fn error_body(message: &str) -> String {
    JsonObject::new().field_str("error", message).finish()
}

fn resolve(kb: &KnowledgeBase, iri: &str) -> Result<NodeId, ApiError> {
    kb.node_id_by_iri(iri)
        .ok_or_else(|| ApiError::not_found(iri))
}

fn mining_config(threads: usize) -> RemiConfig {
    RemiConfig::default().with_threads(threads)
}

/// Renders one `describe` response body using an already-constructed
/// miner (the batched endpoint shares one miner — and thus one prominence
/// ranking and enumeration context — across all entities of the batch).
fn describe_body_with(remi: &Remi<'_>, iri: &str, k: usize) -> Result<String, ApiError> {
    let kb = remi.kb();
    let target = resolve(kb, iri)?;
    let (results, status): (Vec<String>, &str) = if k == 1 {
        let outcome = remi.describe(&[target]);
        let status = match outcome.status {
            remi_core::SearchStatus::Completed => "completed",
            remi_core::SearchStatus::TimedOut => "timed-out",
            remi_core::SearchStatus::NoSolution => "no-solution",
        };
        (
            outcome
                .best
                .iter()
                .map(|(expr, cost)| {
                    JsonObject::new()
                        .field_str("expression", &expr.display(kb).to_string())
                        .field_str("verbalised", &remi_core::verbalize::verbalize(kb, expr))
                        .field_str("complexity", &cost.to_string())
                        .finish()
                })
                .collect(),
            status,
        )
    } else {
        let ranked = describe_top_k(remi, &[target], k);
        let status = if ranked.is_empty() {
            "no-solution"
        } else {
            "completed"
        };
        (
            ranked
                .iter()
                .map(|re| {
                    JsonObject::new()
                        .field_str("expression", &re.expr.display(kb).to_string())
                        .field_str("verbalised", &remi_core::verbalize::verbalize(kb, &re.expr))
                        .field_str("complexity", &re.cost.to_string())
                        .finish()
                })
                .collect(),
            status,
        )
    };
    Ok(JsonObject::new()
        .field_str("entity", iri)
        .field_u64("k", k as u64)
        .field_str("status", status)
        .field_raw("results", &json::array_raw(results))
        .finish())
}

/// Renders the `describe` response for one entity: the most intuitive
/// referring expression(s) mined by `remi_core`, as canonical JSON. This
/// is exactly what `GET /describe/{entity}` answers on a cache miss.
pub fn describe_body(
    kb: &KnowledgeBase,
    iri: &str,
    k: usize,
    threads: usize,
) -> Result<String, ApiError> {
    let remi = Remi::new(kb, mining_config(threads));
    describe_body_with(&remi, iri, k)
}

/// Renders the `summarize` response for one entity — exactly what
/// `GET /summarize/{entity}` answers on a cache miss. `ranks` lets the
/// server reuse its cached PageRank; pass `None` to compute it on demand
/// (the `linksum` method only).
pub fn summarize_body(
    kb: &KnowledgeBase,
    iri: &str,
    k: usize,
    method: &str,
    ranks: Option<&PageRank>,
) -> Result<String, ApiError> {
    let entity = resolve(kb, iri)?;
    let summary = match method {
        "remi" => {
            let model = remi_core::complexity::CostModel::new(
                kb,
                remi_core::complexity::Prominence::Frequency,
                remi_core::complexity::EntityCodeMode::PowerLaw,
            );
            remi_essum::remi_summary(kb, &model, entity, k)
        }
        "faces" => remi_essum::faces_summary(kb, entity, k),
        "linksum" => match ranks {
            Some(pr) => remi_essum::linksum_summary(kb, pr, entity, k),
            None => {
                let pr = pagerank(kb, PageRankConfig::default());
                remi_essum::linksum_summary(kb, &pr, entity, k)
            }
        },
        other => {
            return Err(ApiError::bad(format!(
                "unknown method {other:?} (expected remi, faces, or linksum)"
            )))
        }
    };
    let facts: Vec<String> = summary
        .iter()
        .map(|&(p, o)| {
            JsonObject::new()
                .field_str("predicate", kb.pred_iri(p))
                .field_str("object", kb.node_key(o))
                .finish()
        })
        .collect();
    Ok(JsonObject::new()
        .field_str("entity", iri)
        .field_str("method", method)
        .field_u64("k", k as u64)
        .field_raw("facts", &json::array_raw(facts))
        .finish())
}

// ---------------------------------------------------------------------------
// Server state

/// Request/connection counters, all monotonic except the two gauges
/// (which saturate at zero on decrement — the historical
/// `connections_open` underflow on the parked-connection revive path
/// cannot recur). Every cell is an `Arc` created through the registry, so
/// `/v1/metrics` renders the same instruments `/stats` reads.
struct Metrics {
    requests: Arc<Counter>,
    ok: Arc<Counter>,
    client_errors: Arc<Counter>,
    server_errors: Arc<Counter>,
    shed: Arc<Counter>,
    connections_total: Arc<Counter>,
    connections_open: Arc<Gauge>,
    inflight: Arc<Gauge>,
}

impl Metrics {
    /// Creates every counter/gauge through `registry` get-or-create so the
    /// cells are exposition residents from boot.
    fn register(registry: &Registry) -> Metrics {
        let class =
            |c: &str| registry.counter(&series("remi_http_responses_total", &[("class", c)]));
        Metrics {
            requests: registry.counter("remi_http_requests_total"),
            ok: class("ok"),
            client_errors: class("client_error"),
            server_errors: class("server_error"),
            shed: registry.counter("remi_http_shed_total"),
            connections_total: registry.counter("remi_connections_total"),
            connections_open: registry.gauge("remi_connections_open"),
            inflight: registry.gauge("remi_http_inflight"),
        }
    }
}

/// The fixed request-phase vocabulary: each name is one histogram series
/// (`remi_http_phase_duration_ns{phase=…}`) and one segment a [`Trace`]
/// can close.
const PHASES: &[&str] = &["parse", "admission", "cache", "mine", "ingest", "write"];

/// Pre-resolved HTTP instruments. The per-route 200-status latency
/// histograms are looked up once at boot (aligned with `router::TABLE`),
/// so the hot path records without touching the registry lock; non-200
/// series go through get-or-create, which only rare responses pay for.
struct HttpMetrics {
    /// `(route name, histogram)` for `status="200"`, one per table row.
    route_ok: Vec<(&'static str, Arc<Histogram>)>,
    /// `(phase name, histogram)`, one per [`PHASES`] entry.
    phases: Vec<(&'static str, Arc<Histogram>)>,
    /// Requests past the `--slow-request-ms` threshold.
    slow: Arc<Counter>,
}

/// Status values whose per-route latency families are pre-registered at
/// boot, so a `/v1/metrics` scrape before any traffic already exposes
/// every route's histogram series (`scripts/metrics_check.py` asserts
/// this). Only the `"200"` cells are kept pre-resolved on the hot path;
/// the rest sit in the registry until a response of that status needs
/// them via get-or-create.
const PREREGISTERED_STATUSES: &[&str] = &["200", "400", "500", "503"];

impl HttpMetrics {
    fn register(registry: &Registry) -> HttpMetrics {
        for r in router::TABLE {
            for status in PREREGISTERED_STATUSES {
                registry.histogram(&series(
                    "remi_http_request_duration_ns",
                    &[("route", r.name), ("status", status)],
                ));
            }
        }
        HttpMetrics {
            route_ok: router::TABLE
                .iter()
                .map(|r| {
                    let name = series(
                        "remi_http_request_duration_ns",
                        &[("route", r.name), ("status", "200")],
                    );
                    (r.name, registry.histogram(&name))
                })
                .collect(),
            phases: PHASES
                .iter()
                .map(|&p| {
                    let name = series("remi_http_phase_duration_ns", &[("phase", p)]);
                    (p, registry.histogram(&name))
                })
                .collect(),
            slow: registry.counter("remi_http_slow_requests_total"),
        }
    }
}

/// Per-request trace state threaded through dispatch: the timing span
/// (started before the request parsed), the matched route's table name,
/// and whether `?trace=1` asked for the phase breakdown to be echoed in
/// the response body.
pub(crate) struct Trace<'c> {
    pub(crate) span: Span<'c>,
    pub(crate) route: &'static str,
    pub(crate) echo: bool,
    /// `?explain=1`: `POST /query` bypasses the cache and carries its own
    /// plan trace in the response body (see `query.rs`).
    pub(crate) explain: bool,
}

pub(crate) struct AppState {
    /// The resident KB, now appendable: `POST /ingest` publishes new
    /// epochs, every request pins one [`Snapshot`].
    pub(crate) live: LiveKb,
    primary: Backend,
    /// The other layout, converted lazily on `?backend=` use. Keyed by
    /// `(epoch, fingerprint)`: validity is by *fingerprint* (equal
    /// fingerprint ⟹ equal content, so the conversion survives
    /// compactions, which bump the epoch but not the fingerprint), while
    /// the epoch orders entries so an old-epoch straggler never evicts
    /// the current conversion.
    converted: Mutex<Option<(u64, u64, Arc<KnowledgeBase>)>>,
    cache: ResponseCache,
    metrics: Metrics,
    /// Every named instrument `/v1/metrics` renders: the HTTP cells above,
    /// the shared pool's scheduling counters, and the live KB's
    /// publish/compaction instruments.
    pub(crate) registry: Registry,
    /// The one monotonic time source for request spans, idle deadlines,
    /// and uptime (`remi-lint` rejects raw `Instant::now` in instrumented
    /// files — all serve timing flows through this clock).
    pub(crate) clock: MonoClock,
    http: HttpMetrics,
    slow_request_ms: Option<u64>,
    max_inflight: u64,
    /// Hard cap on simultaneously open connections (4 × `max_inflight`,
    /// min 8): idle parked connections are cheap, so this only bounds
    /// file descriptors and parser buffers.
    max_conns: u64,
    pub(crate) default_threads: usize,
    /// PageRank for `linksum`, computed on demand; same keying as
    /// `converted`.
    ranks: Mutex<Option<(u64, u64, Arc<PageRank>)>>,
    /// The process-wide flight recorder: the planner, the live KB, the
    /// pool, and the HTTP layer all emit into this one bounded ring;
    /// `GET /v1/debug/events` and the slow/500 stderr tails read it back.
    pub(crate) events: Arc<Recorder>,
    /// Planner event ids, interned at boot, emitted per `/query` miss.
    pub(crate) query_events: remi_kb::QueryEvents,
    /// Serve-layer event ids (500s, slow requests).
    http_events: events::HttpEvents,
    /// Quiet keep-alive connections waiting for bytes (see the
    /// connection-handling section): their tasks have returned and the
    /// accept thread's poll loop revives them.
    parked: Mutex<Vec<Conn>>,
    /// Ingestion asked for a compaction; the accept thread's poll loop
    /// spawns it as a pool task (it owns the scope connections run on).
    compaction_wanted: AtomicBool,
    /// A compaction task is currently folding the delta.
    compaction_running: AtomicBool,
    pub(crate) shutdown: CancelToken,
}

impl AppState {
    /// The KB answering this request: the pinned snapshot for the primary
    /// layout, or the per-epoch lazily-converted twin for `?backend=`.
    /// A request pinned on an *older* epoch converts for itself without
    /// touching the slot — stragglers must not evict the conversion the
    /// current epoch's requests share.
    pub(crate) fn kb_for(&self, snap: &Snapshot, backend: Option<Backend>) -> Arc<KnowledgeBase> {
        let backend = backend.unwrap_or(self.primary);
        if backend == self.primary {
            return Arc::clone(&snap.kb);
        }
        let mut slot = self.converted.lock();
        if let Some((epoch, fp, kb)) = &*slot {
            if *fp == snap.fingerprint {
                return Arc::clone(kb);
            }
            if *epoch > snap.epoch {
                drop(slot);
                return Arc::new(snap.kb.as_ref().clone().with_backend(backend));
            }
        }
        let kb = Arc::new(snap.kb.as_ref().clone().with_backend(backend));
        *slot = Some((snap.epoch, snap.fingerprint, Arc::clone(&kb)));
        kb
    }

    /// PageRank over the pinned snapshot (cached by content fingerprint,
    /// same straggler rule as [`AppState::kb_for`]).
    fn ranks_for(&self, snap: &Snapshot) -> Arc<PageRank> {
        let mut slot = self.ranks.lock();
        if let Some((epoch, fp, pr)) = &*slot {
            if *fp == snap.fingerprint {
                return Arc::clone(pr);
            }
            if *epoch > snap.epoch {
                drop(slot);
                return Arc::new(pagerank(snap.kb.as_ref(), PageRankConfig::default()));
            }
        }
        let pr = Arc::new(pagerank(snap.kb.as_ref(), PageRankConfig::default()));
        *slot = Some((snap.epoch, snap.fingerprint, Arc::clone(&pr)));
        pr
    }

    /// The converted twin, but only if one is already resident for this
    /// snapshot's content — `/stats` must never pay for a conversion.
    fn resident_converted(&self, snap: &Snapshot) -> Option<Arc<KnowledgeBase>> {
        let slot = self.converted.lock();
        match &*slot {
            Some((_, fp, kb)) if *fp == snap.fingerprint => Some(Arc::clone(kb)),
            _ => None,
        }
    }
}

/// Decrements a gauge on drop (saturating — see [`remi_obs::Gauge::dec`]).
struct GaugeGuard<'a>(&'a Gauge);

impl Drop for GaugeGuard<'_> {
    fn drop(&mut self) {
        self.0.dec();
    }
}

// ---------------------------------------------------------------------------
// Request handling

pub(crate) struct Response {
    status: u16,
    headers: Vec<(&'static str, String)>,
    body: String,
    /// The `Content-Type` answered — JSON everywhere except `/metrics`.
    content_type: &'static str,
}

impl Response {
    pub(crate) fn ok(body: String) -> Response {
        Response {
            status: 200,
            headers: Vec::new(),
            body,
            content_type: "application/json",
        }
    }

    /// A `200` carrying a non-JSON body (`/metrics`' text exposition).
    pub(crate) fn text(body: String) -> Response {
        Response {
            status: 200,
            headers: Vec::new(),
            body,
            content_type: "text/plain; version=0.0.4",
        }
    }

    pub(crate) fn error(status: u16, message: &str) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: error_body(message),
            content_type: "application/json",
        }
    }

    /// Renders an [`ApiError`] as the shared error envelope
    /// (`{"error": …}` plus `"param"` when the failure names one).
    pub(crate) fn api(e: &ApiError) -> Response {
        let mut obj = JsonObject::new().field_str("error", &e.message);
        if let Some(param) = e.param {
            obj = obj.field_str("param", param);
        }
        Response {
            status: e.status,
            headers: Vec::new(),
            body: obj.finish(),
            content_type: "application/json",
        }
    }

    pub(crate) fn method_not_allowed(allow: &str) -> Response {
        let mut r = Response::error(405, "method not allowed");
        r.headers.push(("Allow", allow.to_string()));
        r
    }
}

/// Consults the cache for `request_key` under the pinned snapshot's
/// fingerprint, rendering and inserting on a miss. The `X-Remi-Cache`
/// header reports which path answered; the body bytes are identical
/// either way. Closes the `cache` trace phase at the probe and the
/// `mine` phase around the render.
pub(crate) fn cached(
    state: &AppState,
    snap: &Snapshot,
    trace: &mut Trace<'_>,
    request_key: String,
    render: impl FnOnce() -> Result<String, ApiError>,
) -> Response {
    let key = CacheKey {
        request: request_key,
        kb: snap.fingerprint,
    };
    if let Some(body) = state.cache.get(&key) {
        trace.span.phase("cache");
        let mut r = Response::ok(body.to_string());
        r.headers.push(("X-Remi-Cache", "hit".to_string()));
        return r;
    }
    trace.span.phase("cache");
    let rendered = render();
    trace.span.phase("mine");
    match rendered {
        Ok(body) => {
            // Don't re-seed a generation that rotated away while we were
            // mining: the eager purge already dropped its entries. (The
            // check races rotation by design — an entry that slips
            // through is unreachable but bounded: the next rotation's
            // purge drops every non-live generation.)
            if state.live.snapshot().fingerprint == snap.fingerprint {
                state.cache.put(key, Arc::from(body.as_str()));
            }
            let mut r = Response::ok(body);
            r.headers.push(("X-Remi-Cache", "miss".to_string()));
            r
        }
        Err(e) => Response::api(&e),
    }
}

pub(crate) fn handle_healthz(
    _state: &AppState,
    _snap: &Snapshot,
    _req: &Request,
    _tail: &str,
    _trace: &mut Trace<'_>,
) -> Response {
    Response::ok(JsonObject::new().field_str("status", "ok").finish())
}

/// `GET /metrics`: every registered instrument (HTTP latency and phase
/// histograms, connection/request counters, pool scheduling, KB
/// publish/compaction) in Prometheus text exposition format, plus ad-hoc
/// point-in-time series — cache and live-KB levels, uptime — sampled at
/// render time.
pub(crate) fn handle_metrics(
    state: &AppState,
    snap: &Snapshot,
    _req: &Request,
    _tail: &str,
    _trace: &mut Trace<'_>,
) -> Response {
    let mut text = state.registry.render_prometheus();
    let cache = state.cache.stats();
    let live = state.live.stats();
    let mut w = PromText::new();
    w.counter("remi_cache_hits_total", cache.hits);
    w.counter("remi_cache_misses_total", cache.misses);
    w.counter("remi_cache_evictions_total", cache.evictions);
    w.counter("remi_cache_purged_total", cache.purged);
    w.gauge("remi_cache_entries", cache.entries);
    w.gauge("remi_kb_epoch", snap.epoch);
    w.gauge("remi_kb_delta_triples", live.delta_triples);
    w.gauge("remi_kb_triples", snap.kb.num_triples() as u64);
    w.counter("remi_kb_ingests_total", live.appends);
    w.gauge("remi_uptime_seconds", state.clock.now_ns() / 1_000_000_000);
    text.push_str(&w.into_string());
    Response::text(text)
}

pub(crate) fn handle_stats(
    state: &AppState,
    snap: &Snapshot,
    _req: &Request,
    _tail: &str,
    _trace: &mut Trace<'_>,
) -> Response {
    let kb = &snap.kb;
    let cache = state.cache.stats();
    let live = state.live.stats();
    let m = &state.metrics;
    let mut residents: Vec<(Backend, Arc<KnowledgeBase>)> =
        vec![(state.primary, Arc::clone(&snap.kb))];
    if let Some(converted) = state.resident_converted(snap) {
        let other = match state.primary {
            Backend::Csr => Backend::Succinct,
            Backend::Succinct => Backend::Csr,
        };
        residents.push((other, converted));
    }
    let store_bytes = residents
        .into_iter()
        .map(|(b, kb)| {
            JsonObject::new()
                .field_str("backend", b.name())
                .field_u64("bytes", kb.store_memory().total() as u64)
                .finish()
        })
        .collect::<Vec<_>>();
    let body = JsonObject::new()
        .field_raw(
            "kb",
            &JsonObject::new()
                .field_u64("triples", kb.num_triples() as u64)
                .field_u64(
                    "triples_with_inverses",
                    kb.num_triples_with_inverses() as u64,
                )
                .field_u64("nodes", kb.num_nodes() as u64)
                .field_u64("predicates", kb.num_preds() as u64)
                .field_str("fingerprint", &format!("{:016x}", snap.fingerprint))
                .finish(),
        )
        .field_raw(
            "live",
            &JsonObject::new()
                .field_u64("epoch", snap.epoch)
                .field_u64("delta_triples", live.delta_triples)
                .field_u64("base_facts", live.base_facts)
                .field_u64("ingests", live.appends)
                .field_u64("ingested_triples", live.appended_triples)
                .field_u64("duplicate_triples", live.duplicate_triples)
                .field_u64("compactions", live.compactions)
                .field_u64("last_compaction_us", live.last_compaction_us)
                .field_bool(
                    "compaction_running",
                    state.compaction_running.load(Ordering::Acquire),
                )
                .finish(),
        )
        .field_raw(
            "backends",
            &JsonObject::new()
                .field_str("primary", state.primary.name())
                .field_raw("resident", &json::array_raw(store_bytes))
                .finish(),
        )
        .field_raw(
            "cache",
            &JsonObject::new()
                .field_u64("hits", cache.hits)
                .field_u64("misses", cache.misses)
                .field_u64("evictions", cache.evictions)
                .field_u64("purged", cache.purged)
                .field_u64("entries", cache.entries)
                .field_u64("capacity", cache.capacity)
                .finish(),
        )
        .field_raw(
            "server",
            &JsonObject::new()
                .field_u64("requests", m.requests.get())
                .field_u64("ok", m.ok.get())
                .field_u64("client_errors", m.client_errors.get())
                .field_u64("server_errors", m.server_errors.get())
                .field_u64("shed", m.shed.get())
                .field_u64("connections_total", m.connections_total.get())
                .field_u64("connections_open", m.connections_open.get())
                .field_u64("inflight", m.inflight.get())
                .field_u64("max_inflight", state.max_inflight)
                .field_u64("max_connections", state.max_conns)
                .field_u64("uptime_ms", state.clock.now_ns() / 1_000_000)
                .finish(),
        )
        .field_raw("latency", &{
            // Per-route latency quantiles (200s only — error paths are in
            // `/v1/metrics` under their own status label).
            let mut obj = JsonObject::new();
            for (route, h) in &state.http.route_ok {
                let s = h.snapshot();
                obj = obj.field_raw(
                    route,
                    &JsonObject::new()
                        .field_u64("count", s.count())
                        .field_u64("p50_ns", s.p50())
                        .field_u64("p90_ns", s.p90())
                        .field_u64("p99_ns", s.p99())
                        .field_u64("max_ns", s.max())
                        .finish(),
                );
            }
            obj.finish()
        })
        .field_raw("phases", &{
            let mut obj = JsonObject::new();
            for (phase, h) in &state.http.phases {
                let s = h.snapshot();
                obj = obj.field_raw(
                    phase,
                    &JsonObject::new()
                        .field_u64("count", s.count())
                        .field_u64("mean_ns", s.mean())
                        .field_u64("p90_ns", s.p90())
                        .finish(),
                );
            }
            obj.finish()
        })
        .finish();
    Response::ok(body)
}

pub(crate) fn handle_describe_one(
    state: &AppState,
    snap: &Snapshot,
    req: &Request,
    iri: &str,
    trace: &mut Trace<'_>,
) -> Response {
    let params = match params::QueryParams::defaults(state.default_threads).merge_query(req) {
        Ok(p) => p,
        Err(e) => return Response::api(&e),
    };
    let (k, threads) = (params.k, params.threads);
    cached(
        state,
        snap,
        trace,
        format!("describe?entity={iri}&k={k}&threads={threads}"),
        // kb_for runs only on a miss: a cache hit must not materialise
        // the lazily-built secondary backend.
        || describe_body(&state.kb_for(snap, params.backend), iri, k, threads),
    )
}

pub(crate) fn handle_describe_batch(
    state: &AppState,
    snap: &Snapshot,
    req: &Request,
    _tail: &str,
    trace: &mut Trace<'_>,
) -> Response {
    let doc = match json::parse(&req.body) {
        Ok(doc) => doc,
        Err(e) => return Response::error(400, &format!("malformed JSON body: {e}")),
    };
    let Some(entities) = doc.get("entities").and_then(|v| v.as_array()) else {
        return Response::error(400, "body must be {\"entities\": [...], ...}");
    };
    if entities.is_empty() || entities.len() > MAX_BATCH {
        return Response::error(400, &format!("entities must hold 1..={MAX_BATCH} IRIs"));
    }
    let mut iris = Vec::with_capacity(entities.len());
    for e in entities {
        match e.as_str() {
            Some(iri) => iris.push(iri),
            None => return Response::error(400, "entities must be strings"),
        }
    }
    let params = match params::QueryParams::defaults(state.default_threads).merge_json(&doc) {
        Ok(p) => p,
        Err(e) => return Response::api(&e),
    };
    let (k, threads, backend) = (params.k, params.threads, params.backend);

    let request_key =
        |iri: &str| -> String { format!("describe?entity={iri}&k={k}&threads={threads}") };
    let cache_key = |iri: &str| CacheKey {
        request: request_key(iri),
        kb: snap.fingerprint,
    };

    // Resolve what the cache already holds; mine the rest in parallel —
    // one scoped pool task per distinct entity (duplicate IRIs in the
    // batch de-duplicate onto one task).
    let mut results: Vec<Option<String>> = vec![None; iris.len()];
    let mut misses: Vec<(&str, Vec<usize>)> = Vec::new();
    for (i, iri) in iris.iter().enumerate() {
        if let Some(body) = state.cache.get(&cache_key(iri)) {
            if let Some(slot) = results.get_mut(i) {
                *slot = Some(body.to_string());
            }
            continue;
        }
        match misses.iter_mut().find(|(m, _)| m == iri) {
            Some((_, slots)) => slots.push(i),
            None => misses.push((iri, vec![i])),
        }
    }
    trace.span.phase("cache");
    if !misses.is_empty() {
        let kb = state.kb_for(snap, backend);
        // One miner (prominence ranking + enumeration context) shared
        // across the whole batch; each entity mines as its own task.
        let remi = Remi::new(&kb, mining_config(threads));
        let mined: Vec<Mutex<Option<Result<String, ApiError>>>> =
            misses.iter().map(|_| Mutex::new(None)).collect();
        remi_pool::global().scope(|scope| {
            for ((iri, _), cell) in misses.iter().zip(&mined) {
                let remi = &remi;
                scope.spawn(move || {
                    *cell.lock() = Some(describe_body_with(remi, iri, k));
                });
            }
        });
        // As in `cached`: a generation that rotated mid-batch is not
        // re-seeded into the cache.
        let still_live = state.live.snapshot().fingerprint == snap.fingerprint;
        for ((iri, slots), cell) in misses.iter().zip(mined) {
            // The scope join guarantees every miner wrote its cell; an
            // empty cell would mean a dropped task, which degrades to an
            // error body for that entity rather than killing the worker.
            let body = match cell.lock().take() {
                Some(Ok(body)) => {
                    if still_live {
                        state.cache.put(cache_key(iri), Arc::from(body.as_str()));
                    }
                    body
                }
                Some(Err(e)) => error_body(&e.message),
                None => error_body("internal: miner task produced no result"),
            };
            for &i in slots {
                if let Some(slot) = results.get_mut(i) {
                    *slot = Some(body.clone());
                }
            }
        }
        trace.span.phase("mine");
    }
    let results: Vec<String> = results
        .into_iter()
        .map(|r| r.unwrap_or_else(|| error_body("internal: batch slot unanswered")))
        .collect();
    Response::ok(
        JsonObject::new()
            .field_u64("count", results.len() as u64)
            .field_raw("results", &json::array_raw(results))
            .finish(),
    )
}

/// `POST /ingest`: appends an N-Triples body to the live KB. One batch is
/// one atomic publish — a parse error applies nothing. A successful
/// append rotates the fingerprint, purges stale response-cache
/// generations, and (past the compaction threshold) schedules a
/// background fold on the shared pool.
pub(crate) fn handle_ingest(
    state: &AppState,
    _snap: &Snapshot,
    req: &Request,
    _tail: &str,
    trace: &mut Trace<'_>,
) -> Response {
    let Ok(body) = std::str::from_utf8(&req.body) else {
        return Response::error(400, "body must be UTF-8 N-Triples");
    };
    if body.trim().is_empty() {
        return Response::error(400, "empty body (expected N-Triples)");
    }
    let appended = state.live.append_ntriples(body);
    trace.span.phase("ingest");
    let outcome = match appended {
        Ok(outcome) => outcome,
        Err(e) => return Response::error(400, &e.to_string()),
    };
    // Purge against the fingerprint that is current *now*, not this
    // batch's: if another ingest already rotated past us, purging with
    // our own (dead) fingerprint would evict the live generation and
    // keep the dead one.
    let purged = if outcome.appended > 0 {
        state.cache.purge_stale(state.live.snapshot().fingerprint)
    } else {
        0
    };
    // Always record the wish, even while a fold is running: batches that
    // land mid-fold stay out of that fold's pinned generation, so the
    // poll loop must schedule another pass once the current one ends.
    let compaction = if state.live.needs_compaction() {
        state.compaction_wanted.store(true, Ordering::Release);
        if state.compaction_running.load(Ordering::Acquire) {
            "running"
        } else {
            "scheduled"
        }
    } else if state.compaction_running.load(Ordering::Acquire) {
        "running"
    } else {
        "none"
    };
    Response::ok(
        JsonObject::new()
            .field_u64("appended", outcome.appended as u64)
            .field_u64("duplicates", outcome.duplicates as u64)
            .field_u64("new_nodes", outcome.new_nodes as u64)
            .field_u64("new_predicates", outcome.new_preds as u64)
            .field_u64("epoch", outcome.epoch)
            .field_str("fingerprint", &format!("{:016x}", outcome.fingerprint))
            .field_u64("delta_triples", outcome.delta_triples as u64)
            .field_u64("cache_purged", purged)
            .field_str("compaction", compaction)
            .finish(),
    )
}

pub(crate) fn handle_summarize(
    state: &AppState,
    snap: &Snapshot,
    req: &Request,
    iri: &str,
    trace: &mut Trace<'_>,
) -> Response {
    let params = match params::QueryParams::defaults(state.default_threads)
        .with_k(5)
        .merge_query(req)
    {
        Ok(p) => p,
        Err(e) => return Response::api(&e),
    };
    let (k, method) = (params.k, params.method);
    cached(
        state,
        snap,
        trace,
        format!("summarize?entity={iri}&k={k}&method={method}"),
        || {
            let ranks = if method == "linksum" {
                Some(state.ranks_for(snap))
            } else {
                None
            };
            summarize_body(
                &state.kb_for(snap, params.backend),
                iri,
                k,
                &method,
                ranks.as_deref(),
            )
        },
    )
}

/// Request-level admission control: mining work beyond the watermark is
/// shed with `503` + `Retry-After` instead of queueing unboundedly.
/// Closes the `admission` trace phase once the request is let through.
pub(crate) fn with_admission(
    state: &AppState,
    req: &Request,
    trace: &mut Trace<'_>,
    handler: impl FnOnce(&AppState, &Request, &mut Trace<'_>) -> Response,
) -> Response {
    let inflight = state.metrics.inflight.inc();
    let _guard = GaugeGuard(&state.metrics.inflight);
    if inflight > state.max_inflight {
        state.metrics.shed.inc();
        let mut r = Response::error(503, "server overloaded, retry later");
        r.headers.push(("Retry-After", "1".to_string()));
        return r;
    }
    trace.span.phase("admission");
    handler(state, req, trace)
}

/// Routes a request, turning panics into `500` and updating counters.
fn respond(state: &AppState, req: &Request, trace: &mut Trace<'_>) -> Response {
    state.metrics.requests.inc();
    let response =
        std::panic::catch_unwind(AssertUnwindSafe(|| router::dispatch(state, req, trace)))
            .unwrap_or_else(|_| Response::error(500, "internal server error"));
    let class = match response.status {
        200..=299 => &state.metrics.ok,
        503 => &state.metrics.shed, // already counted at the shed site
        400..=499 => &state.metrics.client_errors,
        _ => &state.metrics.server_errors,
    };
    if response.status != 503 {
        class.inc();
    }
    if response.status >= 500 && response.status != 503 {
        // A server error is exactly what the flight recorder exists for:
        // record it, then dump the tail (which now includes this event)
        // so the operator sees what led up to the failure.
        state.http_events.record_error(
            &state.events,
            state.clock.now_ns(),
            trace.route,
            response.status,
        );
        events::dump_tail(state, "http-500");
    }
    if trace.echo {
        return with_trace_echo(response, trace);
    }
    response
}

/// Splices a `"trace"` object — the route, the total so far, and every
/// phase closed before the write — into a 200 JSON object body when the
/// request asked with `?trace=1`. The echo happens after the cache, per
/// request, so cached bodies (and the cache key) stay trace-free.
fn with_trace_echo(mut response: Response, trace: &Trace<'_>) -> Response {
    if response.status != 200
        || response.content_type != "application/json"
        || !response.body.ends_with('}')
    {
        return response;
    }
    let phases: Vec<String> = trace
        .span
        .phases()
        .iter()
        .map(|(name, ns)| {
            JsonObject::new()
                .field_str("phase", name)
                .field_u64("ns", *ns)
                .finish()
        })
        .collect();
    let obj = JsonObject::new()
        .field_str("route", trace.route)
        .field_u64("total_ns", trace.span.elapsed_ns())
        .field_raw("phases", &json::array_raw(phases))
        .finish();
    response.body.pop();
    if !response.body.ends_with('{') {
        response.body.push(',');
    }
    response.body.push_str("\"trace\":");
    response.body.push_str(&obj);
    response.body.push('}');
    response
}

/// Folds a finished request into the HTTP instruments: the per-route ×
/// per-status latency histogram, one histogram per closed phase, and —
/// past the `--slow-request-ms` threshold — the slow counter plus a
/// structured one-line breakdown on stderr.
fn finish_request(state: &AppState, trace: Trace<'_>, status: u16) {
    let route = trace.route;
    let report = trace.span.finish();
    if status == 200 {
        // The hot path: pre-resolved at boot, no registry lock.
        if let Some((_, h)) = state.http.route_ok.iter().find(|(n, _)| *n == route) {
            h.record(report.total_ns);
        }
    } else {
        state
            .registry
            .histogram(&series(
                "remi_http_request_duration_ns",
                &[("route", route), ("status", &status.to_string())],
            ))
            .record(report.total_ns);
    }
    for (phase, ns) in &report.phases {
        if let Some((_, h)) = state.http.phases.iter().find(|(n, _)| n == phase) {
            h.record(*ns);
        }
    }
    let Some(threshold_ms) = state.slow_request_ms else {
        return;
    };
    if report.total_ns < threshold_ms.saturating_mul(1_000_000) {
        return;
    }
    state.http.slow.inc();
    state
        .http_events
        .record_slow(&state.events, state.clock.now_ns(), route, report.total_ns);
    let mut line = format!(
        "slow-request route={route} status={status} total_us={}",
        report.total_ns / 1_000
    );
    for (phase, ns) in &report.phases {
        line.push_str(&format!(" {phase}_us={}", ns / 1_000));
    }
    // lint:allow(print-in-library): the slow-request log is the operator-facing diagnostic this endpoint exists to emit
    eprintln!("{line}");
    events::dump_tail(state, "slow-request");
}

// ---------------------------------------------------------------------------
// Connection handling
//
// A connection task occupies a pool worker only while it is actively
// parsing or answering. When the socket goes quiet, the task *parks* the
// connection (stream + parser state) in `AppState::parked` and returns,
// freeing the worker; the accept thread's poll loop `peek`s parked
// sockets and re-spawns a task when bytes arrive. Without this, one idle
// keep-alive connection would pin a worker for its whole lifetime — on a
// small pool (1–2 cores) that starves every other connection.

/// One parked (or in-flight) connection's state.
struct Conn {
    stream: TcpStream,
    parser: RequestParser,
    /// Close when idle past this clock reading (refreshed per request;
    /// nanoseconds on the server's [`MonoClock`]).
    expires_ns: u64,
    /// Set when the connection was parked for fairness with complete
    /// input still buffered in the parser: the sweep revives it on the
    /// next tick instead of waiting for socket-visible bytes.
    resume: bool,
    /// Owns the `connections_open` decrement (runs wherever the
    /// connection is dropped — task, parked sweep, or state teardown).
    _gauge: OpenGauge,
}

/// Decrements `connections_open` on drop. The decrement saturates at
/// zero ([`remi_obs::Gauge::dec`]): a connection dropped twice on the
/// parked-revive path pins the gauge at 0 instead of wrapping `/stats`'
/// `connections_open` to 2^64-1.
struct OpenGauge(Arc<AppState>);

impl Drop for OpenGauge {
    fn drop(&mut self) {
        self.0.metrics.connections_open.dec();
    }
}

/// After this many back-to-back requests, a hot connection on a contended
/// pool yields its worker (parks) so queued connections get a turn.
const FAIRNESS_BURST: usize = 256;

impl AppState {
    /// Parks a quiet connection for the poll loop to revive.
    fn park(&self, conn: Conn) {
        if conn.stream.set_nonblocking(true).is_err() {
            return; // dropping the conn closes it and fixes the gauge
        }
        self.parked.lock().push(conn);
    }

    /// More open connections than pool workers: hot connections must
    /// yield between bursts or the rest starve.
    fn contended(&self) -> bool {
        self.metrics.connections_open.get() > remi_pool::global().threads() as u64
    }

    /// The idle deadline a request refresh (or a fresh accept) grants.
    fn idle_deadline_ns(&self) -> u64 {
        self.clock.now_ns() + IDLE_TIMEOUT.as_nanos() as u64
    }
}

/// Serves one connection until it closes, errors, or goes quiet (then it
/// parks). Runs as a scoped task on the shared pool.
fn drive_connection(mut conn: Conn, state: &Arc<AppState>) {
    // The write timeout bounds how long a client that stops reading can
    // pin this worker; on expiry write_all errors and the connection
    // closes.
    if conn.stream.set_nonblocking(false).is_err()
        || conn.stream.set_read_timeout(Some(READ_TIMEOUT)).is_err()
        || conn.stream.set_write_timeout(Some(WRITE_TIMEOUT)).is_err()
    {
        return;
    }
    conn.resume = false;
    let mut buf = [0u8; 4096];
    let mut burst = 0usize;
    loop {
        // Drain any fully-buffered (possibly pipelined) request first.
        // The span opens before the parse attempt so the `parse` phase
        // covers it; on NeedMore the span is dropped unused (one clock
        // read, no allocation).
        let mut span = Span::start(&state.clock);
        match conn.parser.try_parse() {
            Ok(Parsed::Complete(req)) => {
                span.phase("parse");
                let mut trace = Trace {
                    span,
                    route: "unmatched",
                    echo: req.query_param("trace") == Some("1"),
                    explain: req.query_param("explain") == Some("1"),
                };
                // Draining on shutdown: answer every request already
                // received (the parser may hold more complete pipelined
                // ones), then close instead of waiting for new ones.
                let draining = state.shutdown.is_cancelled();
                let keep_alive = req.keep_alive && (!draining || conn.parser.buffered() > 0);
                let response = respond(state, &req, &mut trace);
                let headers: Vec<(&str, &str)> = response
                    .headers
                    .iter()
                    .map(|(n, v)| (*n, v.as_str()))
                    .collect();
                let bytes = http::write_response_typed(
                    response.status,
                    response.content_type,
                    &headers,
                    &response.body,
                    keep_alive,
                );
                let write_ok = conn.stream.write_all(&bytes).is_ok();
                trace.span.phase("write");
                finish_request(state, trace, response.status);
                if !write_ok || !keep_alive {
                    return;
                }
                conn.expires_ns = state.idle_deadline_ns();
                burst += 1;
                if burst >= FAIRNESS_BURST && state.contended() {
                    // Yield the worker even mid-pipeline: `resume` tells
                    // the sweep to re-spawn on the next tick rather than
                    // wait for `peek` (the buffered bytes are invisible
                    // to the socket).
                    conn.resume = conn.parser.buffered() > 0;
                    return state.park(conn);
                }
                let pool = remi_pool::global();
                if pool.queued() > 0 && pool.idle_workers() == 0 {
                    // Work is waiting (another connection, a background
                    // compaction) and no idle worker will pick it up:
                    // yield between requests. Without this, one chatty
                    // keep-alive socket that never goes quiet for a full
                    // read timeout pins its worker indefinitely — on a
                    // 1-worker pool that starves every queued job. The
                    // idle-worker guard keeps already-claimed nested-
                    // scope stubs (which inflate `queued` until popped)
                    // from parking connections the pool could never
                    // benefit from freeing.
                    conn.resume = conn.parser.buffered() > 0;
                    return state.park(conn);
                }
                continue;
            }
            Ok(Parsed::NeedMore) => {}
            Err(e) => {
                // Protocol error: answer with its status and close (the
                // stream is no longer in sync).
                state.metrics.requests.inc();
                state.metrics.client_errors.inc();
                let bytes = http::write_response(e.status, &[], &error_body(&e.message), false);
                let _ = conn.stream.write_all(&bytes);
                return;
            }
        }
        if state.shutdown.is_cancelled() {
            // No complete request buffered (NeedMore above): close. A
            // partial request is dropped — only fully-received requests
            // are part of the drain guarantee.
            return;
        }
        if state.clock.now_ns() >= conn.expires_ns {
            return;
        }
        match conn.stream.read(&mut buf) {
            Ok(0) => return, // peer closed
            // lint:allow(panic-in-serve): `read` contract guarantees n <= buf.len()
            Ok(n) => conn.parser.push(&buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Quiet for a full read-timeout tick: park instead of
                // pinning the worker (unless we are shutting down, in
                // which case closing *is* the drain).
                if state.shutdown.is_cancelled() {
                    return;
                }
                return state.park(conn);
            }
            Err(_) => return,
        }
    }
}

/// Shortest poll-loop nap: the sweep granularity while traffic flows.
const POLL_NAP_MIN: Duration = Duration::from_millis(1);

/// Longest poll-loop nap: where the idle backoff settles, so an idle
/// server burns ~50 wakeups/s instead of ~1000 while still noticing new
/// connections, revived parked sockets, and shutdown within one tick.
const POLL_NAP_MAX: Duration = Duration::from_millis(20);

/// The adaptive nap schedule: any progress snaps back to the 1 ms floor;
/// quiet ticks double the nap toward the 20 ms ceiling.
fn next_nap(current: Duration, progressed: bool) -> Duration {
    if progressed {
        POLL_NAP_MIN
    } else {
        (current * 2).min(POLL_NAP_MAX)
    }
}

/// Spawns the background compaction task when ingestion asked for one and
/// none is already running. Runs on the accept loop (it owns the scope);
/// the fold itself runs as a pool task so connections keep being served.
fn maybe_spawn_compaction(state: &Arc<AppState>, scope: &remi_pool::Scope<'_, '_>) -> bool {
    if !state.compaction_wanted.load(Ordering::Acquire)
        || state.compaction_running.swap(true, Ordering::AcqRel)
    {
        return false;
    }
    state.compaction_wanted.store(false, Ordering::Release);
    let state = Arc::clone(state);
    scope.spawn(move || {
        // Re-check under the running flag: a compaction that raced this
        // request may already have folded the delta.
        if state.live.needs_compaction() {
            // Content is unchanged by a fold, so the fingerprint — and
            // with it every cached response — stays valid.
            let _ = state.live.compact();
        }
        state.compaction_running.store(false, Ordering::Release);
    });
    true
}

/// Scans parked connections: revives those with readable bytes, closes
/// peers that disconnected or idled out. Returns true when any
/// connection changed state.
fn sweep_parked(state: &Arc<AppState>, scope: &remi_pool::Scope<'_, '_>) -> bool {
    let mut progressed = false;
    let now = state.clock.now_ns();
    let mut parked = state.parked.lock();
    let mut i = 0;
    while i < parked.len() {
        let mut probe = [0u8; 1];
        // lint:allow(panic-in-serve): `i < parked.len()` is the loop guard, so the index is in bounds
        let entry = &parked[i];
        let verdict = if entry.resume {
            Some(true) // fairness-parked with input already buffered
        } else {
            match entry.stream.peek(&mut probe) {
                Ok(0) => Some(false), // peer closed
                Ok(_) => Some(true),  // bytes waiting
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if now >= entry.expires_ns {
                        Some(false) // idled out
                    } else {
                        None // still parked
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => None,
                Err(_) => Some(false),
            }
        };
        match verdict {
            Some(true) => {
                let conn = parked.swap_remove(i);
                let state = Arc::clone(state);
                scope.spawn(move || drive_connection(conn, &state));
                progressed = true;
            }
            Some(false) => {
                drop(parked.swap_remove(i)); // closes + fixes the gauge
                progressed = true;
            }
            None => i += 1,
        }
    }
    progressed
}

fn accept_loop(listener: TcpListener, state: Arc<AppState>) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    // Every connection runs as scoped tasks on the shared executor; the
    // scope only closes once all of them have drained, which is exactly
    // the graceful-shutdown barrier.
    remi_pool::global().scope(|scope| {
        let mut nap = POLL_NAP_MIN;
        loop {
            let mut progressed = false;
            // Drain the accept backlog.
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        progressed = true;
                        if state.shutdown.is_cancelled() {
                            break;
                        }
                        state.metrics.connections_total.inc();
                        let open = state.metrics.connections_open.inc();
                        let gauge = OpenGauge(Arc::clone(&state));
                        if open > state.max_conns {
                            // Connection-level shedding: bounds file
                            // descriptors and parser buffers; the mining
                            // watermark is enforced per request.
                            state.metrics.shed.inc();
                            let mut stream = stream;
                            let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
                            let bytes = http::write_response(
                                503,
                                &[("Retry-After", "1")],
                                &error_body("server overloaded, retry later"),
                                false,
                            );
                            let _ = stream.write_all(&bytes);
                            drop(gauge);
                            continue;
                        }
                        let _ = stream.set_nodelay(true);
                        let conn = Conn {
                            stream,
                            parser: RequestParser::new(),
                            expires_ns: state.idle_deadline_ns(),
                            resume: false,
                            _gauge: gauge,
                        };
                        let state = Arc::clone(&state);
                        scope.spawn(move || drive_connection(conn, &state));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(_) => break, // transient (EMFILE, ECONNABORTED)
                }
            }
            if state.shutdown.is_cancelled() {
                // Drain parked connections: fairness-parked ones still
                // hold complete pipelined requests (`resume`) and get one
                // final task to answer them; idle ones are between
                // requests, so closing them *is* the drain. In-flight
                // tasks finish via the scope join.
                let drained: Vec<Conn> = std::mem::take(&mut *state.parked.lock());
                for conn in drained {
                    if conn.resume {
                        let state = Arc::clone(&state);
                        scope.spawn(move || drive_connection(conn, &state));
                    }
                }
                break;
            }
            progressed |= sweep_parked(&state, scope);
            progressed |= maybe_spawn_compaction(&state, scope);
            nap = next_nap(nap, progressed);
            if !progressed {
                std::thread::sleep(nap);
            }
        }
    });
    // The scope join above waited for every in-flight task, so any task
    // that raced the pre-break clear and parked afterwards has finished
    // its push by now: one final clear closes those connections instead
    // of leaving them silently open until the state itself drops.
    state.parked.lock().clear();
}

// ---------------------------------------------------------------------------
// The server façade

/// A running server. Dropping the handle shuts the server down
/// gracefully: the listener stops accepting, in-flight requests drain on
/// the pool, and the accept thread is joined.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<AppState>,
    thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the real port when `:0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// `http://host:port` for this server.
    pub fn url(&self) -> String {
        format!("http://{}", self.addr)
    }

    /// Signals shutdown (SIGTERM-equivalent): sets the shared
    /// [`CancelToken`]; the poll loop stops accepting, closes parked
    /// (between-requests) connections, and the accept thread is joined
    /// once every in-flight request has drained. Idempotent.
    pub fn shutdown(&mut self) {
        self.state.shutdown.cancel();
        // The poll loop notices the flag within one nap tick; no wakeup
        // connection is needed (the listener is non-blocking).
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }

    /// Blocks until the server shuts down (the `remi serve` foreground
    /// path — some other actor must call for shutdown).
    pub fn wait(&mut self) {
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Boots a server over `kb`: binds `config.addr`, converts the KB to the
/// configured backend if needed, wraps it for live ingestion,
/// fingerprints it, and starts the accept loop on a dedicated thread
/// (connections run on the shared pool).
pub fn serve(kb: KnowledgeBase, config: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let backend = config.backend.unwrap_or_else(|| kb.backend());
    let kb = if kb.backend() == backend {
        kb
    } else {
        kb.with_backend(backend)
    };
    // The server treats `compact_min_delta` as an absolute trigger (no
    // relative fraction): operators size it to their KB, and the fold
    // runs off the request path anyway.
    let live = LiveKb::with_policy(
        kb,
        CompactionPolicy {
            min_delta: config.compact_min_delta.max(1),
            delta_fraction: 0.0,
        },
    );
    // One registry per server: the HTTP instruments are created through
    // it, while the shared pool's scheduling counters and the live KB's
    // publish/compaction instruments (both built standalone, registry-
    // free) are attached by `Arc` so `/v1/metrics` renders them too.
    let registry = Registry::new();
    let pm = remi_pool::global().metrics();
    registry.register_counter("remi_pool_steals_total", Arc::clone(&pm.steals));
    registry.register_counter("remi_pool_claims_total", Arc::clone(&pm.claims));
    registry.register_counter("remi_pool_parks_total", Arc::clone(&pm.parks));
    registry.register_counter("remi_pool_revives_total", Arc::clone(&pm.revives));
    registry.register_counter("remi_pool_help_drains_total", Arc::clone(&pm.help_drains));
    registry.register_gauge("remi_pool_queue_depth", Arc::clone(&pm.queue_depth));
    let ki = live.instruments();
    registry.register_histogram("remi_kb_publish_duration_ns", Arc::clone(&ki.publish_ns));
    registry.register_histogram(
        "remi_kb_ingest_batch_triples",
        Arc::clone(&ki.batch_triples),
    );
    registry.register_histogram(
        "remi_kb_publish_delta_triples",
        Arc::clone(&ki.delta_triples),
    );
    registry.register_histogram("remi_kb_compact_duration_ns", Arc::clone(&ki.compact_ns));
    registry.register_counter(
        "remi_kb_compactions_total{outcome=\"performed\"}",
        Arc::clone(&ki.compactions_performed),
    );
    registry.register_counter(
        "remi_kb_compactions_total{outcome=\"skipped\"}",
        Arc::clone(&ki.compactions_skipped),
    );
    let metrics = Metrics::register(&registry);
    let http = HttpMetrics::register(&registry);
    // One flight recorder per server, one clock anchor for every emitter:
    // `MonoClock` is `Copy`, so the KB's and the pool's injected clocks
    // share the request spans' time base and event timestamps line up
    // with phase timings. The pool is process-wide — its first attachment
    // wins, so in a multi-server process pool events land in the first
    // server's ring (and only there).
    let clock = MonoClock::new();
    let events = Recorder::shared(config.event_capacity);
    live.attach_events(Arc::clone(&events), Arc::new(clock));
    remi_pool::global().attach_events(Arc::clone(&events), Arc::new(clock));
    let query_events = remi_kb::QueryEvents::new(Arc::clone(&events));
    let http_events = events::HttpEvents::new(&events);
    let state = Arc::new(AppState {
        live,
        primary: backend,
        converted: Mutex::new(None),
        cache: ResponseCache::new(config.cache_entries),
        metrics,
        registry,
        clock,
        http,
        slow_request_ms: config.slow_request_ms,
        max_inflight: config.max_inflight.max(1) as u64,
        max_conns: (config.max_inflight.max(1) as u64).saturating_mul(4).max(8),
        default_threads: config.threads.max(1),
        events,
        query_events,
        http_events,
        ranks: Mutex::new(None),
        parked: Mutex::new(Vec::new()),
        compaction_wanted: AtomicBool::new(false),
        compaction_running: AtomicBool::new(false),
        shutdown: CancelToken::new(),
    });
    let accept_state = Arc::clone(&state);
    // lint:allow(raw-thread-primitive): the accept loop must outlive any pool scope and owns the listener — a dedicated OS thread is the design, not a parallelism shortcut
    let thread = std::thread::Builder::new()
        .name("remi-serve-accept".to_string())
        .spawn(move || accept_loop(listener, accept_state))?;
    Ok(ServerHandle {
        addr,
        state,
        thread: Some(thread),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_kb() -> KnowledgeBase {
        let mut b = remi_kb::KbBuilder::new();
        b.add_iri("e:Paris", "p:capitalOf", "e:France");
        b.add_iri("e:Paris", "p:cityIn", "e:France");
        b.add_iri("e:Lyon", "p:cityIn", "e:France");
        b.add_iri("e:Marseille", "p:cityIn", "e:France");
        b.build().unwrap()
    }

    #[test]
    fn kb_fingerprint_distinguishes_content_not_backend() {
        let kb = tiny_kb();
        let fp = kb_fingerprint(&kb);
        assert_eq!(
            fp,
            kb_fingerprint(&kb.clone().with_backend(Backend::Succinct))
        );
        let mut b = remi_kb::KbBuilder::new();
        b.add_iri("e:Paris", "p:capitalOf", "e:Germany");
        assert_ne!(fp, kb_fingerprint(&b.build().unwrap()));
    }

    #[test]
    fn describe_body_renders_the_library_answer() {
        let kb = tiny_kb();
        let body = describe_body(&kb, "e:Paris", 1, 1).unwrap();
        let remi = Remi::new(&kb, RemiConfig::default());
        let paris = kb.node_id_by_iri("e:Paris").unwrap();
        let (expr, cost) = remi.describe(&[paris]).best.unwrap();
        assert!(
            body.contains(&json::escape(&expr.display(&kb).to_string())),
            "{body}"
        );
        assert!(body.contains(&cost.to_string()), "{body}");
        assert!(body.contains("\"status\":\"completed\""), "{body}");

        let err = describe_body(&kb, "e:Nowhere", 1, 1).unwrap_err();
        assert_eq!(err.status, 404);
    }

    #[test]
    fn summarize_body_renders_each_method() {
        let kb = tiny_kb();
        for method in ["remi", "faces", "linksum"] {
            let body = summarize_body(&kb, "e:Paris", 2, method, None).unwrap();
            assert!(
                body.contains(&format!("\"method\":{}", json::escape(method))),
                "{body}"
            );
            assert!(body.contains("\"facts\":["), "{body}");
        }
        assert_eq!(
            summarize_body(&kb, "e:Paris", 2, "magic", None)
                .unwrap_err()
                .status,
            400
        );
    }

    #[test]
    fn server_boots_answers_and_shuts_down() {
        let mut server = serve(tiny_kb(), ServeConfig::default()).unwrap();
        let mut c = client::Client::connect(server.addr()).unwrap();
        let health = c.get("/healthz").unwrap();
        assert_eq!(health.status, 200);
        assert_eq!(health.body, "{\"status\":\"ok\"}");

        // Same describe twice: second answer is a cache hit with
        // byte-identical body.
        let cold = c.get("/describe/e:Paris").unwrap();
        assert_eq!(cold.status, 200, "{}", cold.body);
        assert_eq!(cold.header("x-remi-cache"), Some("miss"));
        let warm = c.get("/describe/e:Paris").unwrap();
        assert_eq!(warm.header("x-remi-cache"), Some("hit"));
        assert_eq!(cold.body, warm.body);
        assert_eq!(
            cold.body,
            describe_body(&tiny_kb(), "e:Paris", 1, server_threads()).unwrap()
        );

        server.shutdown();
        server.shutdown(); // idempotent
        assert!(
            client::Client::connect(server.addr()).is_err() || {
                // The OS may accept briefly after close; a request must fail.
                let mut c = client::Client::connect(server.addr()).unwrap();
                c.get("/healthz").is_err()
            }
        );
    }

    fn server_threads() -> usize {
        ServeConfig::default().threads
    }

    #[test]
    fn nap_schedule_grows_when_idle_and_resets_on_traffic() {
        // Quiet ticks: 1 → 2 → 4 → 8 → 16 → 20 → 20 (capped).
        let mut nap = POLL_NAP_MIN;
        let mut seen = Vec::new();
        for _ in 0..7 {
            nap = next_nap(nap, false);
            seen.push(nap.as_millis() as u64);
        }
        assert_eq!(seen, [2, 4, 8, 16, 20, 20, 20]);
        // Any progress snaps straight back to the floor.
        assert_eq!(next_nap(POLL_NAP_MAX, true), POLL_NAP_MIN);
        assert_eq!(next_nap(POLL_NAP_MIN, true), POLL_NAP_MIN);
    }

    #[test]
    fn ingest_appends_and_rotates_the_fingerprint() {
        let mut server = serve(tiny_kb(), ServeConfig::default()).unwrap();
        let mut c = client::Client::connect(server.addr()).unwrap();

        let stats = c.get("/stats").unwrap();
        assert!(stats.body.contains("\"epoch\":0"), "{}", stats.body);

        let resp = c
            .post("/ingest", "<e:Nantes> <p:cityIn> <e:France> .\n")
            .unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body);
        assert!(resp.body.contains("\"appended\":1"), "{}", resp.body);
        assert!(resp.body.contains("\"epoch\":1"), "{}", resp.body);

        // The new entity is servable immediately.
        let desc = c.get("/describe/e:Nantes").unwrap();
        assert_eq!(desc.status, 200, "{}", desc.body);

        // Parse errors reject the whole batch, atomically.
        let bad = c.post("/ingest", "<e:a> <p:b> .\n").unwrap();
        assert_eq!(bad.status, 400, "{}", bad.body);
        let stats = c.get("/stats").unwrap();
        assert!(stats.body.contains("\"epoch\":1"), "{}", stats.body);

        // Pure duplicates keep the epoch (idempotent ingest).
        let dup = c
            .post("/ingest", "<e:Nantes> <p:cityIn> <e:France> .\n")
            .unwrap();
        assert!(dup.body.contains("\"appended\":0"), "{}", dup.body);
        assert!(dup.body.contains("\"epoch\":1"), "{}", dup.body);

        // GET /ingest is not a thing.
        assert_eq!(c.get("/ingest").unwrap().status, 405);
        server.shutdown();
    }
}
