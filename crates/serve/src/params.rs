//! The typed request-parameter extractor shared by every endpoint.
//!
//! Before this module each handler re-parsed and re-clamped its own `k`,
//! `threads`, `backend`, `method` (and now `limit`). [`QueryParams`] is
//! the one validation path: endpoint defaults come from
//! [`QueryParams::defaults`] (adjusted with [`QueryParams::with_k`]),
//! URL query strings overlay through [`QueryParams::merge_query`], JSON
//! bodies through [`QueryParams::merge_json`], and every failure is an
//! [`ApiError`] tagged with the offending parameter name — rendered as
//! the consistent `{"error": …, "param": …}` envelope.

use remi_kb::Backend;

use crate::http::Request;
use crate::json::Value;
use crate::ApiError;

/// Hard cap on `k` for describe/summarize.
pub(crate) const MAX_K: usize = 64;

/// Hard cap on `threads` per request.
pub(crate) const MAX_THREADS: usize = 256;

/// Default `/query` row limit when the body names none.
pub(crate) const DEFAULT_QUERY_LIMIT: usize = 100;

/// Hard cap on the `/query` row limit.
pub(crate) const MAX_QUERY_LIMIT: usize = 1000;

/// The tunable parameters an endpoint may accept, after clamping.
#[derive(Debug, Clone)]
pub(crate) struct QueryParams {
    /// Result count for describe/summarize (`1..=MAX_K`).
    pub k: usize,
    /// P-REMI task count (`1..=MAX_THREADS`).
    pub threads: usize,
    /// Requested storage backend (`None` = the server's primary).
    pub backend: Option<Backend>,
    /// Summarisation method (validated downstream, where the method
    /// dispatch lives).
    pub method: String,
    /// Row limit for `/query` (`1..=MAX_QUERY_LIMIT`).
    pub limit: usize,
}

impl QueryParams {
    /// The server-side defaults every request starts from.
    pub fn defaults(default_threads: usize) -> QueryParams {
        QueryParams {
            k: 1,
            threads: default_threads,
            backend: None,
            method: "remi".to_string(),
            limit: DEFAULT_QUERY_LIMIT,
        }
    }

    /// Overrides the default `k` (summarize defaults to 5, describe to 1).
    pub fn with_k(mut self, k: usize) -> QueryParams {
        self.k = k;
        self
    }

    /// Overlays the URL query-string parameters.
    pub fn merge_query(mut self, req: &Request) -> Result<QueryParams, ApiError> {
        if let Some(raw) = req.query_param("k") {
            self.k = clamp_int("k", raw.parse().ok(), MAX_K)?;
        }
        if let Some(raw) = req.query_param("threads") {
            self.threads = clamp_int("threads", raw.parse().ok(), MAX_THREADS)?;
        }
        if let Some(raw) = req.query_param("limit") {
            self.limit = clamp_int("limit", raw.parse().ok(), MAX_QUERY_LIMIT)?;
        }
        if let Some(raw) = req.query_param("backend") {
            self.backend = Some(parse_backend(raw)?);
        }
        if let Some(raw) = req.query_param("method") {
            self.method = raw.to_string();
        }
        Ok(self)
    }

    /// Overlays the top-level fields of a JSON request body.
    pub fn merge_json(mut self, doc: &Value) -> Result<QueryParams, ApiError> {
        if let Some(v) = doc.get("k") {
            self.k = clamp_int("k", v.as_usize(), MAX_K)?;
        }
        if let Some(v) = doc.get("threads") {
            self.threads = clamp_int("threads", v.as_usize(), MAX_THREADS)?;
        }
        if let Some(v) = doc.get("limit") {
            self.limit = clamp_int("limit", v.as_usize(), MAX_QUERY_LIMIT)?;
        }
        if let Some(v) = doc.get("backend") {
            let Some(raw) = v.as_str() else {
                return Err(ApiError::bad_param("backend", "backend must be a string"));
            };
            self.backend = Some(parse_backend(raw)?);
        }
        Ok(self)
    }
}

/// The one integer clamp: present-but-unparsable and out-of-range values
/// fail identically, naming the parameter.
fn clamp_int(name: &'static str, value: Option<usize>, max: usize) -> Result<usize, ApiError> {
    match value {
        Some(v) if (1..=max).contains(&v) => Ok(v),
        _ => Err(ApiError::bad_param(
            name,
            format!("{name} must be an integer in 1..={max}"),
        )),
    }
}

fn parse_backend(raw: &str) -> Result<Backend, ApiError> {
    Backend::parse(raw).ok_or_else(|| {
        ApiError::bad_param(
            "backend",
            format!("unknown backend {raw:?} (expected csr or succinct)"),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::RequestParser;
    use crate::json;

    fn request(target: &str) -> Request {
        let mut p = RequestParser::new();
        p.push(format!("GET {target} HTTP/1.1\r\n\r\n").as_bytes());
        match p.try_parse().unwrap() {
            crate::http::Parsed::Complete(req) => req,
            other => panic!("expected a complete request, got {other:?}"),
        }
    }

    #[test]
    fn query_string_overlays_and_clamps() {
        let p = QueryParams::defaults(4)
            .merge_query(&request(
                "/describe/e:X?k=3&threads=2&limit=5&backend=succinct",
            ))
            .unwrap();
        assert_eq!((p.k, p.threads, p.limit), (3, 2, 5));
        assert_eq!(p.backend, Some(Backend::Succinct));

        let defaults = QueryParams::defaults(4)
            .merge_query(&request("/x"))
            .unwrap();
        assert_eq!((defaults.k, defaults.threads, defaults.limit), (1, 4, 100));
        assert_eq!(defaults.backend, None);
        assert_eq!(defaults.method, "remi");
    }

    #[test]
    fn errors_name_the_offending_parameter() {
        for (target, param, message) in [
            ("/x?k=0", "k", "k must be an integer in 1..=64"),
            ("/x?k=nope", "k", "k must be an integer in 1..=64"),
            (
                "/x?threads=999",
                "threads",
                "threads must be an integer in 1..=256",
            ),
            (
                "/x?limit=1001",
                "limit",
                "limit must be an integer in 1..=1000",
            ),
            (
                "/x?backend=flat",
                "backend",
                "unknown backend \"flat\" (expected csr or succinct)",
            ),
        ] {
            let err = QueryParams::defaults(1)
                .merge_query(&request(target))
                .unwrap_err();
            assert_eq!(err.status, 400, "{target}");
            assert_eq!(err.param, Some(param), "{target}");
            assert_eq!(err.message, message, "{target}");
        }
    }

    #[test]
    fn json_body_overlays_with_the_same_clamp() {
        let doc = json::parse(br#"{"k": 2, "threads": 8, "limit": 10, "backend": "csr"}"#).unwrap();
        let p = QueryParams::defaults(4).merge_json(&doc).unwrap();
        assert_eq!((p.k, p.threads, p.limit), (2, 8, 10));
        assert_eq!(p.backend, Some(Backend::Csr));

        let bad = json::parse(br#"{"backend": 7}"#).unwrap();
        let err = QueryParams::defaults(4).merge_json(&bad).unwrap_err();
        assert_eq!(err.param, Some("backend"));
        assert_eq!(err.message, "backend must be a string");
    }
}
