//! `POST /query` — the triple-pattern / BGP endpoint.
//!
//! The body names up to [`MAX_PATTERNS`] patterns (`{"s": …, "p": …,
//! "o": …}`, slots starting with `?` are variables) plus an optional
//! `limit` and `backend`; the response is a variable header and the
//! joined rows, rendered as canonical JSON and cached under the epoch
//! fingerprint exactly like describe — a cache hit is byte-identical to
//! the miss that seeded it. Evaluation runs behind admission control and
//! carries the server's shutdown token, so long scans abort with `503`
//! instead of pinning workers through a drain.

use remi_kb::delta::Snapshot;
use remi_kb::query::{parse_patterns, solve_bgp_traced, PlanTrace, QueryError, MAX_PATTERNS};
use remi_kb::{KnowledgeBase, NodeId, PredId};
use remi_obs::Clock as _;
use remi_pool::CancelToken;

use crate::http::Request;
use crate::json::{self, JsonObject};
use crate::params::QueryParams;
use crate::{cached, ApiError, AppState, Response, Trace};

/// Extracts the `patterns` field: a non-empty array of objects whose
/// `s`/`p`/`o` fields are strings.
fn pattern_strings(doc: &json::Value) -> Result<Vec<[String; 3]>, ApiError> {
    let Some(items) = doc.get("patterns").and_then(|v| v.as_array()) else {
        return Err(ApiError::bad_param(
            "patterns",
            "body must be {\"patterns\": [{\"s\": …, \"p\": …, \"o\": …}, …], …}",
        ));
    };
    if items.is_empty() || items.len() > MAX_PATTERNS {
        return Err(ApiError::bad_param(
            "patterns",
            format!("patterns must hold 1..={MAX_PATTERNS} triple patterns"),
        ));
    }
    let mut patterns = Vec::with_capacity(items.len());
    for item in items {
        let slot = |name: &str| -> Result<String, ApiError> {
            item.get(name)
                .and_then(|v| v.as_str())
                .map(str::to_string)
                .ok_or_else(|| {
                    ApiError::bad_param(
                        "patterns",
                        format!("each pattern must be an object with string fields \"s\", \"p\", \"o\" (bad {name:?})"),
                    )
                })
        };
        patterns.push([slot("s")?, slot("p")?, slot("o")?]);
    }
    Ok(patterns)
}

/// The canonical cache key of a query: limit + the patterns as given.
/// (Like describe, the backend is deliberately absent — both backends
/// render byte-identical bodies, so they share cache entries.)
fn request_key(patterns: &[[String; 3]], limit: usize) -> String {
    let spec: Vec<String> = patterns
        .iter()
        .map(|[s, p, o]| format!("{s} {p} {o}"))
        .collect();
    format!("query?limit={limit}&patterns={}", spec.join(";"))
}

/// Renders the `/query` response body — exactly what `POST /query`
/// answers on a cache miss: the variable header (first-appearance
/// order), the row count, the truncation flag, and one row of bound
/// IRIs per solution.
pub fn query_body(
    kb: &KnowledgeBase,
    patterns: &[[String; 3]],
    limit: usize,
    cancel: Option<&CancelToken>,
) -> Result<String, ApiError> {
    query_body_traced(kb, patterns, limit, cancel).map(|(body, _, _)| body)
}

/// Like [`query_body`], but also returns the planner's [`PlanTrace`]
/// (execution order, est-vs-actual cardinalities, join path) and the row
/// count. The body is byte-identical to [`query_body`]'s — the trace
/// rides alongside, never inside, so cached bodies stay explain-free.
pub fn query_body_traced(
    kb: &KnowledgeBase,
    patterns: &[[String; 3]],
    limit: usize,
    cancel: Option<&CancelToken>,
) -> Result<(String, PlanTrace, usize), ApiError> {
    let q =
        parse_patterns(kb, patterns).map_err(|e| ApiError::bad_param("patterns", e.to_string()))?;
    let (out, plan) =
        solve_bgp_traced(kb.store(), &q.patterns, limit, cancel).map_err(|e| match e {
            QueryError::Cancelled => ApiError {
                status: 503,
                message: "query cancelled".to_string(),
                param: None,
            },
            other => ApiError::bad_param("patterns", other.to_string()),
        })?;
    let names: Vec<&str> = out
        .vars
        .iter()
        .filter_map(|&v| q.var_names.get(v as usize).map(String::as_str))
        .collect();
    let rows: Vec<String> = out
        .rows
        .iter()
        .map(|row| {
            let terms = out.vars.iter().zip(row).map(|(&v, &val)| {
                if q.pred_var.get(v as usize) == Some(&true) {
                    kb.pred_iri(PredId(val))
                } else {
                    kb.node_key(NodeId(val))
                }
            });
            json::array_str(terms)
        })
        .collect();
    let count = rows.len();
    let body = JsonObject::new()
        .field_raw("vars", &json::array_str(names))
        .field_u64("count", count as u64)
        .field_bool("truncated", out.truncated)
        .field_raw("rows", &json::array_raw(rows))
        .finish();
    Ok((body, plan, count))
}

/// Splices an `"explain"` object — the join path, the truncation flag,
/// and one entry per executed pattern (execution order, estimated vs
/// actual cardinality) — into a rendered query body. Mirrors the
/// `?trace=1` echo: applied per request, after the cache would have
/// answered, so the spliced body is never cached.
fn with_explain(mut body: String, plan: &PlanTrace) -> String {
    let steps: Vec<String> = plan
        .steps
        .iter()
        .map(|s| {
            JsonObject::new()
                .field_u64("pattern", s.pattern as u64)
                .field_u64("estimated", s.estimated as u64)
                .field_u64("matches", s.matches)
                .finish()
        })
        .collect();
    let obj = JsonObject::new()
        .field_str(
            "path",
            if plan.merge_fast_path {
                "merge"
            } else {
                "nested"
            },
        )
        .field_bool("truncated", plan.truncated)
        .field_raw("patterns", &json::array_raw(steps))
        .finish();
    body.pop();
    if !body.ends_with('{') {
        body.push(',');
    }
    body.push_str("\"explain\":");
    body.push_str(&obj);
    body.push('}');
    body
}

/// The `POST /query` handler (a row of the route table).
pub(crate) fn handle_query(
    state: &AppState,
    snap: &Snapshot,
    req: &Request,
    _tail: &str,
    trace: &mut Trace<'_>,
) -> Response {
    let doc = match json::parse(&req.body) {
        Ok(doc) => doc,
        Err(e) => return Response::error(400, &format!("malformed JSON body: {e}")),
    };
    let patterns = match pattern_strings(&doc) {
        Ok(p) => p,
        Err(e) => return Response::api(&e),
    };
    let params = match QueryParams::defaults(state.default_threads).merge_json(&doc) {
        Ok(p) => p,
        Err(e) => return Response::api(&e),
    };
    if trace.explain {
        // `?explain=1` bypasses the cache in both directions: the probe is
        // skipped (a hit could not carry this request's plan) and the
        // rendered body is never inserted (cached bodies stay
        // explain-free, mirroring `?trace=1`). The cache *key* never
        // mentions explain either — `request_key` is unchanged.
        trace.span.phase("cache");
        let result = query_body_traced(
            &state.kb_for(snap, params.backend),
            &patterns,
            params.limit,
            Some(&state.shutdown),
        );
        trace.span.phase("mine");
        return match result {
            Ok((body, plan, rows)) => {
                state.query_events.record(state.clock.now_ns(), &plan, rows);
                let mut r = Response::ok(with_explain(body, &plan));
                r.headers.push(("X-Remi-Cache", "bypass".to_string()));
                r
            }
            Err(e) => {
                if e.status == 503 {
                    state
                        .query_events
                        .record_cancelled(state.clock.now_ns(), patterns.len());
                }
                Response::api(&e)
            }
        };
    }
    cached(
        state,
        snap,
        trace,
        request_key(&patterns, params.limit),
        || {
            // kb_for runs only on a miss: a cache hit must not materialise
            // the lazily-built secondary backend.
            match query_body_traced(
                &state.kb_for(snap, params.backend),
                &patterns,
                params.limit,
                Some(&state.shutdown),
            ) {
                Ok((body, plan, rows)) => {
                    // Planner events fire on the miss path only — a cache
                    // hit never ran the planner.
                    state.query_events.record(state.clock.now_ns(), &plan, rows);
                    Ok(body)
                }
                Err(e) => {
                    if e.status == 503 {
                        state
                            .query_events
                            .record_cancelled(state.clock.now_ns(), patterns.len());
                    }
                    Err(e)
                }
            }
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use remi_kb::Backend;

    fn kb() -> KnowledgeBase {
        let mut b = remi_kb::KbBuilder::new();
        b.add_iri("e:Paris", "p:capitalOf", "e:France");
        b.add_iri("e:Paris", "p:cityIn", "e:France");
        b.add_iri("e:Lyon", "p:cityIn", "e:France");
        b.build().unwrap()
    }

    fn pat(s: &str, p: &str, o: &str) -> [String; 3] {
        [s.to_string(), p.to_string(), o.to_string()]
    }

    #[test]
    fn body_lists_vars_and_rows() {
        let kb = kb();
        let body = query_body(&kb, &[pat("?city", "p:cityIn", "e:France")], 100, None).unwrap();
        assert_eq!(
            body,
            "{\"vars\":[\"city\"],\"count\":2,\"truncated\":false,\
             \"rows\":[[\"e:Paris\"],[\"e:Lyon\"]]}"
        );
    }

    #[test]
    fn bodies_are_byte_identical_across_backends() {
        let kb = kb();
        let succ = kb.clone().with_backend(Backend::Succinct);
        for patterns in [
            vec![pat("?s", "?p", "?o")],
            vec![
                pat("?city", "p:cityIn", "e:France"),
                pat("?city", "p:capitalOf", "?country"),
            ],
        ] {
            assert_eq!(
                query_body(&kb, &patterns, 50, None).unwrap(),
                query_body(&succ, &patterns, 50, None).unwrap(),
                "{patterns:?}"
            );
        }
    }

    #[test]
    fn unknown_iris_answer_zero_rows_not_errors() {
        let body = query_body(&kb(), &[pat("?x", "p:nope", "e:Missing")], 10, None).unwrap();
        assert!(body.contains("\"count\":0"), "{body}");
        assert!(body.contains("\"rows\":[]"), "{body}");
    }

    #[test]
    fn parse_failures_are_param_tagged() {
        let err = query_body(&kb(), &[pat("?", "p:cityIn", "e:France")], 10, None).unwrap_err();
        assert_eq!(err.status, 400);
        assert_eq!(err.param, Some("patterns"));

        let doc = json::parse(br#"{"patterns": [{"s": "?x", "p": 3, "o": "?y"}]}"#).unwrap();
        let err = pattern_strings(&doc).unwrap_err();
        assert_eq!(err.param, Some("patterns"));
    }

    #[test]
    fn cancelled_queries_surface_as_503() {
        let token = CancelToken::default();
        token.cancel();
        let err = query_body(&kb(), &[pat("?s", "?p", "?o")], 10, Some(&token)).unwrap_err();
        assert_eq!(err.status, 503);
    }

    #[test]
    fn request_keys_are_canonical() {
        assert_eq!(
            request_key(&[pat("?s", "p:cityIn", "e:France")], 7),
            "query?limit=7&patterns=?s p:cityIn e:France"
        );
        assert_eq!(
            request_key(&[pat("?a", "?b", "?c"), pat("?c", "p:x", "e:Y")], 100),
            "query?limit=100&patterns=?a ?b ?c;?c p:x e:Y"
        );
    }
}
