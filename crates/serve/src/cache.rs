//! The sharded response cache: rendered JSON bodies keyed by
//! `(entity, request fingerprint, KB fingerprint)`.
//!
//! Responses are rendered against one KB *generation* (the fingerprint in
//! the key), so entries never go stale in place — ingestion rotates the
//! fingerprint and [`ResponseCache::purge_stale`] drops the entries of
//! dead generations eagerly instead of waiting for LRU pressure to push
//! them out. The cache bounds memory (LRU per shard) and contention
//! (shard-per-key-hash, one mutex each, in the style of sharded web-cache
//! tiers). Hit/miss/eviction/purge counts are surfaced through `/stats`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use remi_kb::cache::LruCache;

/// A cache key: the entity plus fingerprints of everything else that
/// determines the response bytes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// The canonical request descriptor (endpoint + every parameter that
    /// affects the body, in fixed order), e.g.
    /// `describe?entity=e:X&exceptions=0&k=1&lang=remi&threads=2`.
    pub request: String,
    /// Fingerprint of the resident KB content (see
    /// [`kb_fingerprint`](crate::kb_fingerprint)).
    pub kb: u64,
}

/// A point-in-time snapshot of the cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to mining.
    pub misses: u64,
    /// Entries displaced by the LRU bound.
    pub evictions: u64,
    /// Stale-generation entries dropped by fingerprint rotation.
    pub purged: u64,
    /// Entries currently resident.
    pub entries: u64,
    /// Total capacity across shards (0 = caching disabled).
    pub capacity: u64,
}

const SHARDS: usize = 16;

/// A sharded LRU over rendered response bodies. Capacity 0 disables
/// caching entirely (every `get` misses, every `put` is a no-op) — the
/// configuration the cold-path benchmarks use.
#[derive(Debug)]
pub struct ResponseCache {
    shards: Vec<Mutex<LruCache<CacheKey, Arc<str>>>>,
    evictions: AtomicU64,
    purged: AtomicU64,
    /// Misses on a disabled cache (shards empty) still need accounting.
    disabled_misses: AtomicU64,
    capacity: usize,
}

impl ResponseCache {
    /// A cache holding at most `capacity` entries, spread over up to 16
    /// shards.
    pub fn new(capacity: usize) -> ResponseCache {
        let shards = if capacity == 0 {
            Vec::new()
        } else {
            // Small capacities get fewer shards so the per-shard LRU bound
            // (capacity / shards) stays meaningful.
            let n = SHARDS.min(capacity);
            let per_shard = capacity.div_ceil(n);
            (0..n)
                .map(|_| Mutex::new(LruCache::new(per_shard)))
                .collect()
        };
        ResponseCache {
            shards,
            evictions: AtomicU64::new(0),
            purged: AtomicU64::new(0),
            disabled_misses: AtomicU64::new(0),
            capacity,
        }
    }

    /// Drops every entry whose KB fingerprint differs from `live_fp` —
    /// those generations can never be requested again, so waiting for LRU
    /// pressure would only hold their memory hostage. Returns the number
    /// of entries purged.
    pub fn purge_stale(&self, live_fp: u64) -> u64 {
        let mut purged = 0u64;
        for shard in &self.shards {
            let mut shard = shard.lock();
            purged += shard.retain(|key, _| key.kb == live_fp) as u64;
        }
        self.purged.fetch_add(purged, Ordering::Relaxed);
        purged
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<LruCache<CacheKey, Arc<str>>> {
        let mut hasher = remi_kb::fx::FxHasher::default();
        std::hash::Hash::hash(key, &mut hasher);
        let hash = std::hash::Hasher::finish(&hasher);
        // lint:allow(panic-in-serve): index is `hash % len` on a non-empty shard vec — in bounds by construction
        &self.shards[(hash as usize) % self.shards.len()]
    }

    /// Looks up a rendered body, refreshing its recency on a hit.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<str>> {
        if self.shards.is_empty() {
            self.disabled_misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut shard = self.shard(key).lock();
        shard.get(key).cloned()
    }

    /// Inserts a rendered body, evicting the shard's LRU entry when full.
    pub fn put(&self, key: CacheKey, body: Arc<str>) {
        if self.shards.is_empty() {
            return;
        }
        let mut shard = self.shard(&key).lock();
        if shard.len() == shard.capacity() && shard.peek(&key).is_none() {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        shard.put(key, body);
    }

    /// Aggregated counters across shards.
    pub fn stats(&self) -> CacheStats {
        let mut stats = CacheStats {
            evictions: self.evictions.load(Ordering::Relaxed),
            purged: self.purged.load(Ordering::Relaxed),
            misses: self.disabled_misses.load(Ordering::Relaxed),
            capacity: self.capacity as u64,
            ..CacheStats::default()
        };
        for shard in &self.shards {
            let shard = shard.lock();
            stats.hits += shard.hits();
            stats.misses += shard.misses();
            stats.entries += shard.len() as u64;
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(request: &str) -> CacheKey {
        CacheKey {
            request: request.to_string(),
            kb: 7,
        }
    }

    #[test]
    fn hit_miss_and_eviction_accounting() {
        let cache = ResponseCache::new(1); // single shard, single entry
        assert!(cache.get(&key("a")).is_none());
        cache.put(key("a"), "A".into());
        assert_eq!(cache.get(&key("a")).as_deref(), Some("A"));
        cache.put(key("b"), "B".into()); // evicts a
        assert!(cache.get(&key("a")).is_none());
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.capacity, 1);
    }

    #[test]
    fn rewriting_a_key_is_not_an_eviction() {
        let cache = ResponseCache::new(1);
        cache.put(key("a"), "A".into());
        cache.put(key("a"), "A2".into());
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.get(&key("a")).as_deref(), Some("A2"));
    }

    #[test]
    fn distinct_kb_fingerprints_do_not_collide() {
        let cache = ResponseCache::new(64);
        cache.put(
            CacheKey {
                request: "r".into(),
                kb: 1,
            },
            "one".into(),
        );
        cache.put(
            CacheKey {
                request: "r".into(),
                kb: 2,
            },
            "two".into(),
        );
        assert_eq!(
            cache
                .get(&CacheKey {
                    request: "r".into(),
                    kb: 1
                })
                .as_deref(),
            Some("one")
        );
        assert_eq!(
            cache
                .get(&CacheKey {
                    request: "r".into(),
                    kb: 2
                })
                .as_deref(),
            Some("two")
        );
    }

    #[test]
    fn zero_capacity_disables_caching_but_counts_misses() {
        let cache = ResponseCache::new(0);
        cache.put(key("a"), "A".into());
        assert!(cache.get(&key("a")).is_none());
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.capacity, 0);
        assert_eq!(stats.entries, 0);
    }

    #[test]
    fn purge_stale_drops_only_dead_generations() {
        let cache = ResponseCache::new(64);
        for fp in [1u64, 2, 3] {
            for i in 0..5 {
                cache.put(
                    CacheKey {
                        request: format!("r{i}"),
                        kb: fp,
                    },
                    format!("body-{fp}-{i}").into(),
                );
            }
        }
        let purged = cache.purge_stale(3);
        assert_eq!(purged, 10, "two dead generations of five entries");
        let stats = cache.stats();
        assert_eq!(stats.purged, 10);
        assert_eq!(stats.entries, 5);
        // The live generation survives byte-for-byte.
        for i in 0..5 {
            assert_eq!(
                cache
                    .get(&CacheKey {
                        request: format!("r{i}"),
                        kb: 3
                    })
                    .as_deref(),
                Some(format!("body-3-{i}").as_str())
            );
        }
        // Purging again is a no-op.
        assert_eq!(cache.purge_stale(3), 0);
        // A disabled cache purges nothing and never panics.
        assert_eq!(ResponseCache::new(0).purge_stale(3), 0);
    }

    #[test]
    fn concurrent_hammer_preserves_bounds_and_accounting() {
        // Satellite test: many threads hammer a small cache; afterwards the
        // resident-entry bound holds and hits + misses equals the exact
        // number of get() calls issued.
        let cache = Arc::new(ResponseCache::new(32));
        let threads = 8;
        let gets_per_thread = 2_000;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..gets_per_thread {
                        let k = key(&format!("req-{}", (t * 31 + i * 7) % 101));
                        if cache.get(&k).is_none() {
                            cache.put(k, format!("body-{t}-{i}").into());
                        }
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(
            stats.hits + stats.misses,
            (threads * gets_per_thread) as u64
        );
        assert!(
            stats.entries <= 32 + 15, // per-shard rounding: ceil(32/16)*16
            "entries {} exceed the rounded capacity",
            stats.entries
        );
        assert!(
            stats.hits > 0,
            "a 101-key working set must hit a 32-entry LRU"
        );
        assert!(stats.evictions > 0, "a 101-key working set must evict");
    }
}
