//! The declarative route table.
//!
//! Every endpoint is exactly one row of [`TABLE`]: `(method, path spec,
//! admission flag) → handler`. Dispatch walks the table once per
//! request, so the API surface, the admission-control policy, and the
//! `405 Allow` header all derive from the same declaration — there is no
//! hand-rolled if-chain to drift out of sync.
//!
//! Paths are versioned: `/v1/{route}` is the canonical spelling and the
//! legacy unprefixed `/{route}` remains as an alias (the `/v1` prefix is
//! stripped before table lookup, so every row serves both).

use remi_kb::delta::Snapshot;

use crate::http::Request;
use crate::{with_admission, AppState, Response, Trace};

/// How a route matches a request path.
pub(crate) enum PathSpec {
    /// The whole path, exactly.
    Exact(&'static str),
    /// A leading prefix; the remainder (possibly empty) is the capture
    /// handed to the handler — e.g. the entity IRI of `/describe/{iri}`.
    Prefix(&'static str),
}

impl PathSpec {
    /// The capture when `path` matches this spec (`""` for exact routes).
    fn capture<'p>(&self, path: &'p str) -> Option<&'p str> {
        match *self {
            PathSpec::Exact(spec) => (path == spec).then_some(""),
            PathSpec::Prefix(spec) => path.strip_prefix(spec),
        }
    }
}

/// A request handler: the pinned snapshot, the parsed request, the path
/// capture (empty for exact routes), and the request's trace for phase
/// boundaries.
pub(crate) type Handler = fn(&AppState, &Snapshot, &Request, &str, &mut Trace<'_>) -> Response;

/// One row of the route table.
pub(crate) struct Route {
    /// HTTP method this row answers.
    pub method: &'static str,
    /// Path shape this row matches.
    pub path: PathSpec,
    /// Metric label for this row: the `route` value of
    /// `remi_http_request_duration_ns{route=…,status=…}` and the key of
    /// `/stats`' `latency` section.
    pub name: &'static str,
    /// Whether the handler runs behind the admission watermark (mining,
    /// query, and ingest work is shed with 503 beyond it; `/healthz` and
    /// `/stats` stay answerable under full load).
    pub admission: bool,
    /// The handler function.
    pub handler: Handler,
}

/// The whole API surface, one declaration per endpoint.
pub(crate) const TABLE: &[Route] = &[
    Route {
        method: "GET",
        path: PathSpec::Exact("/healthz"),
        name: "healthz",
        admission: false,
        handler: crate::handle_healthz,
    },
    Route {
        method: "GET",
        path: PathSpec::Exact("/stats"),
        name: "stats",
        admission: false,
        handler: crate::handle_stats,
    },
    Route {
        method: "GET",
        path: PathSpec::Exact("/metrics"),
        name: "metrics",
        admission: false,
        handler: crate::handle_metrics,
    },
    Route {
        method: "GET",
        path: PathSpec::Exact("/debug/events"),
        name: "debug_events",
        admission: false,
        handler: crate::events::handle_debug_events,
    },
    Route {
        method: "GET",
        path: PathSpec::Prefix("/describe/"),
        name: "describe",
        admission: true,
        handler: crate::handle_describe_one,
    },
    Route {
        method: "POST",
        path: PathSpec::Exact("/describe"),
        name: "describe_batch",
        admission: true,
        handler: crate::handle_describe_batch,
    },
    Route {
        method: "GET",
        path: PathSpec::Prefix("/summarize/"),
        name: "summarize",
        admission: true,
        handler: crate::handle_summarize,
    },
    Route {
        method: "POST",
        path: PathSpec::Exact("/ingest"),
        name: "ingest",
        admission: true,
        handler: crate::handle_ingest,
    },
    Route {
        method: "POST",
        path: PathSpec::Exact("/query"),
        name: "query",
        admission: true,
        handler: crate::query::handle_query,
    },
];

/// Strips the `/v1` version prefix: `/v1/stats` routes like `/stats`.
/// Only a real segment boundary counts — `/v1x` is not versioned, and a
/// bare `/v1` matches no route.
fn strip_version(path: &str) -> &str {
    match path.strip_prefix("/v1") {
        Some(rest) if rest.starts_with('/') => rest,
        _ => path,
    }
}

/// Routes one parsed request against a pinned snapshot (one epoch per
/// request — mid-request ingests never tear a response). A path that
/// matches rows only under other methods answers `405` with an `Allow`
/// header listing exactly the methods the table declares for it.
pub(crate) fn dispatch(state: &AppState, req: &Request, trace: &mut Trace<'_>) -> Response {
    let snap = state.live.snapshot();
    let path = strip_version(&req.path);
    let mut allow: Vec<&'static str> = Vec::new();
    for route in TABLE {
        let Some(tail) = route.path.capture(path) else {
            continue;
        };
        if route.method == req.method {
            trace.route = route.name;
            return if route.admission {
                with_admission(state, req, trace, |state, req, trace| {
                    (route.handler)(state, &snap, req, tail, trace)
                })
            } else {
                (route.handler)(state, &snap, req, tail, trace)
            };
        }
        if !allow.contains(&route.method) {
            allow.push(route.method);
        }
    }
    if allow.is_empty() {
        Response::error(404, &format!("no such route: {}", req.path))
    } else {
        Response::method_not_allowed(&allow.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_prefix_strips_only_on_segment_boundaries() {
        assert_eq!(strip_version("/v1/stats"), "/stats");
        assert_eq!(strip_version("/v1/describe/e:X"), "/describe/e:X");
        assert_eq!(strip_version("/stats"), "/stats");
        assert_eq!(strip_version("/v1"), "/v1");
        assert_eq!(strip_version("/v1x"), "/v1x");
    }

    #[test]
    fn captures_follow_the_spec() {
        assert_eq!(PathSpec::Exact("/stats").capture("/stats"), Some(""));
        assert_eq!(PathSpec::Exact("/stats").capture("/stats2"), None);
        assert_eq!(
            PathSpec::Prefix("/describe/").capture("/describe/e:X"),
            Some("e:X")
        );
        assert_eq!(PathSpec::Prefix("/describe/").capture("/describe"), None);
        assert_eq!(
            PathSpec::Prefix("/describe/").capture("/describe/"),
            Some("")
        );
    }

    #[test]
    fn table_declares_each_route_once_per_method() {
        for (i, a) in TABLE.iter().enumerate() {
            for b in TABLE.iter().skip(i + 1) {
                let same = match (&a.path, &b.path) {
                    (PathSpec::Exact(x), PathSpec::Exact(y)) => x == y,
                    (PathSpec::Prefix(x), PathSpec::Prefix(y)) => x == y,
                    _ => false,
                };
                assert!(
                    !(same && a.method == b.method),
                    "duplicate route {} {:?}",
                    a.method,
                    match a.path {
                        PathSpec::Exact(p) | PathSpec::Prefix(p) => p,
                    }
                );
            }
        }
    }
}
