//! `remi-serve-load` — load generator for the embedded HTTP service.
//!
//! Boots an in-process server over a KB file, fires concurrent keep-alive
//! clients at it, and reports throughput and latency quantiles (p50/p90/
//! p99/max) plus the server's own cache counters. The `--cold` flag
//! disables the response cache, so a warm/cold pair of runs measures how
//! much of the serving path caching removes.
//!
//! `--ingest-ratio F` turns the run into a mixed read/write workload:
//! that fraction of each client's requests become `POST /ingest` batches
//! of fresh synthetic triples (every batch unique, so the delta overlay
//! genuinely grows while miners read), and the report splits latency
//! quantiles per class. `--query-ratio F` does the same with
//! `POST /query` triple-pattern joins built from the KB's own
//! predicates, adding a third latency class to the report.
//!
//! Latencies are folded into [`remi_obs::Histogram`]s — the same
//! instrument the server records into — and `--metrics-url` scrapes
//! `/v1/metrics` at the end of the run, printing server-observed and
//! client-observed latency side by side (`auto` scrapes the server this
//! run booted).
//!
//! `--dump-metrics PATH` writes the scraped exposition to a file for
//! `scripts/metrics_check.py`; `--dump-events PATH` does the same with
//! the server's `GET /v1/debug/events` flight-recorder dump for
//! `scripts/events_check.py`.
//!
//! Usage:
//!   remi-serve-load <kb.{rkb,rkb2,nt}> [--requests N] [--clients C]
//!                   [--backend csr|succinct] [--entities e:A,e:B,...]
//!                   [--mode describe|summarize|healthz] [--cold]
//!                   [--ingest-ratio F] [--query-ratio F]
//!                   [--metrics-url auto|host:port]
//!                   [--dump-metrics PATH] [--dump-events PATH]

#![forbid(unsafe_code)]

use std::net::{SocketAddr, ToSocketAddrs};
use std::process::ExitCode;
use std::time::Instant;

use remi_obs::{bucket_index, Histogram, HistogramSnapshot, BUCKETS};
use remi_serve::client::Client;
use remi_serve::http::percent_encode;
use remi_serve::{serve, ServeConfig};

struct Args {
    kb_path: String,
    requests: usize,
    clients: usize,
    backend: Option<remi_kb::Backend>,
    entities: Vec<String>,
    mode: String,
    cold: bool,
    ingest_ratio: f64,
    query_ratio: f64,
    metrics_url: Option<String>,
    dump_metrics: Option<String>,
    dump_events: Option<String>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        kb_path: String::new(),
        requests: 2000,
        clients: 4,
        backend: None,
        entities: Vec::new(),
        mode: "describe".to_string(),
        cold: false,
        ingest_ratio: 0.0,
        query_ratio: 0.0,
        metrics_url: None,
        dump_metrics: None,
        dump_events: None,
    };
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {a}"))
        };
        match a.as_str() {
            "--requests" => {
                args.requests = value()?
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| "--requests takes a positive int".to_string())?
            }
            "--clients" => {
                args.clients = value()?
                    .parse::<usize>()
                    .map_err(|_| "--clients takes an int".to_string())?
                    .max(1)
            }
            "--backend" => {
                let v = value()?;
                args.backend = Some(
                    remi_kb::Backend::parse(&v).ok_or_else(|| format!("unknown backend {v:?}"))?,
                )
            }
            "--entities" => {
                args.entities = value()?.split(',').map(str::to_string).collect();
            }
            "--mode" => {
                let v = value()?;
                if !matches!(v.as_str(), "describe" | "summarize" | "healthz") {
                    return Err(format!("unknown mode {v:?}"));
                }
                args.mode = v;
            }
            "--cold" => args.cold = true,
            "--ingest-ratio" => {
                args.ingest_ratio = value()?
                    .parse::<f64>()
                    .ok()
                    .filter(|r| (0.0..=1.0).contains(r))
                    .ok_or_else(|| "--ingest-ratio takes a float in 0..=1".to_string())?
            }
            "--query-ratio" => {
                args.query_ratio = value()?
                    .parse::<f64>()
                    .ok()
                    .filter(|r| (0.0..=1.0).contains(r))
                    .ok_or_else(|| "--query-ratio takes a float in 0..=1".to_string())?
            }
            "--metrics-url" => args.metrics_url = Some(value()?),
            "--dump-metrics" => args.dump_metrics = Some(value()?),
            "--dump-events" => args.dump_events = Some(value()?),
            p if !p.starts_with("--") && args.kb_path.is_empty() => args.kb_path = p.to_string(),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.kb_path.is_empty() {
        return Err("usage: remi-serve-load <kb> [--requests N] [--clients C] \
                    [--backend csr|succinct] [--entities a,b] \
                    [--mode describe|summarize|healthz] [--cold] \
                    [--ingest-ratio F] [--query-ratio F] \
                    [--metrics-url auto|host:port] [--dump-metrics PATH] \
                    [--dump-events PATH]"
            .to_string());
    }
    // A dump without an explicit scrape target means "this run's server".
    if args.dump_metrics.is_some() && args.metrics_url.is_none() {
        args.metrics_url = Some("auto".to_string());
    }
    if args.ingest_ratio + args.query_ratio > 1.0 {
        return Err("--ingest-ratio and --query-ratio must sum to at most 1".to_string());
    }
    Ok(args)
}

/// A small unique N-Triples batch for one ingest request: grows the KB on
/// every call (deterministically — client and sequence number key it).
fn ingest_payload(client: usize, seq: usize) -> String {
    format!(
        "<e:load_c{client}_i{seq}> <p:loadIngested> <e:loadBatch_c{client}> .\n\
         <e:load_c{client}_i{seq}> <p:loadSeq> <e:seq_{seq}> .\n"
    )
}

/// Latency quantile line from a histogram snapshot (nanosecond
/// observations rendered in µs — the same `remi-obs` estimation the
/// server's `/stats` latency section uses).
fn quantile_line(s: &HistogramSnapshot) -> String {
    if s.count() == 0 {
        return "n/a".to_string();
    }
    // A scraped snapshot carries no true max (`from_parts` with
    // `u64::MAX`) — the bucket quantiles are still valid, so just elide
    // the max column.
    let max = if s.max() == u64::MAX {
        String::new()
    } else {
        format!("max {}µs  ", s.max() / 1_000)
    };
    format!(
        "p50 {}µs  p90 {}µs  p99 {}µs  {max}(n={})",
        s.p50() / 1_000,
        s.p90() / 1_000,
        s.p99() / 1_000,
        s.count(),
    )
}

/// Rebuilds the histogram registered as `family{labels}` from a
/// `/v1/metrics` scrape: the cumulative `_bucket{…,le=…}` lines are
/// de-cumulated back into per-bucket counts via [`bucket_index`], and the
/// true max is unknown (`u64::MAX`), so quantiles report bucket upper
/// edges — exactly what the server itself would estimate.
fn parse_prom_histogram(text: &str, family: &str, labels: &str) -> Option<HistogramSnapshot> {
    let mut buckets = [0u64; BUCKETS];
    let mut count = 0u64;
    let mut sum = 0u64;
    let mut prev = 0u64;
    let mut seen = false;
    for line in text.lines() {
        let Some(rest) = line.strip_prefix(family) else {
            continue;
        };
        if let Some(rest) = rest.strip_prefix("_bucket{") {
            let Some((labelpart, value)) = rest.split_once("} ") else {
                continue;
            };
            if !labels.is_empty() && !labelpart.starts_with(labels) {
                continue;
            }
            let Some(le) = labelpart
                .split("le=\"")
                .nth(1)
                .and_then(|s| s.split('"').next())
            else {
                continue;
            };
            let cumulative: u64 = value.trim().parse().ok()?;
            if le != "+Inf" {
                let edge: u64 = le.parse().ok()?;
                let i = bucket_index(edge);
                buckets[i] = cumulative.saturating_sub(prev);
                prev = cumulative;
                seen = true;
            }
        } else if let Some(rest) = suffix_value(rest, "_sum", labels) {
            sum = rest;
            seen = true;
        } else if let Some(rest) = suffix_value(rest, "_count", labels) {
            count = rest;
            seen = true;
        }
    }
    seen.then(|| HistogramSnapshot::from_parts(buckets, count, sum, u64::MAX))
}

/// Parses `"<suffix>{labels} value"` / `"<suffix> value"` off a line
/// remainder, returning the value when the labels match.
fn suffix_value(rest: &str, suffix: &str, labels: &str) -> Option<u64> {
    let rest = rest.strip_prefix(suffix)?;
    let value = if labels.is_empty() {
        rest.strip_prefix(' ')?
    } else {
        rest.strip_prefix('{')?
            .strip_prefix(labels)?
            .strip_prefix("} ")?
    };
    value.trim().parse().ok()
}

/// `auto` → the in-process server; otherwise `host:port` (with an
/// optional `http://` prefix and path, both ignored after the authority).
fn resolve_metrics_addr(spec: &str, own: SocketAddr) -> Result<SocketAddr, String> {
    if spec == "auto" {
        return Ok(own);
    }
    let authority = spec
        .strip_prefix("http://")
        .unwrap_or(spec)
        .split('/')
        .next()
        .unwrap_or(spec);
    authority
        .to_socket_addrs()
        .map_err(|e| format!("cannot resolve --metrics-url {spec:?}: {e}"))?
        .next()
        .ok_or_else(|| format!("--metrics-url {spec:?} resolves to no address"))
}

fn load_kb(path: &str) -> Result<remi_kb::KnowledgeBase, String> {
    // Same dispatch (and inverse fraction) as the `remi` CLI, so the
    // load generator exercises the exact KB the CLI would serve.
    remi_kb::load_path(std::path::Path::new(path), 0.01)
        .map_err(|e| format!("cannot read {path}: {e}"))
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `POST /query` payloads built from the KB's own predicates: single
/// full-extent patterns over the fattest predicates plus one 2-pattern
/// chain join, so the mix exercises both engine paths.
fn query_payloads(kb: &remi_kb::KnowledgeBase) -> Vec<String> {
    let mut preds: Vec<remi_kb::PredId> = kb
        .pred_ids()
        .filter(|&p| !kb.is_inverse(p) && kb.index(p).num_facts() > 0)
        .collect();
    preds.sort_by_key(|&p| std::cmp::Reverse(kb.index(p).num_facts()));
    preds.truncate(4);
    let mut payloads: Vec<String> = preds
        .iter()
        .map(|&p| {
            format!(
                "{{\"patterns\":[{{\"s\":\"?s\",\"p\":{},\"o\":\"?o\"}}],\"limit\":100}}",
                remi_serve::json::escape(kb.pred_iri(p))
            )
        })
        .collect();
    if let Some(&p) = preds.first() {
        let p = remi_serve::json::escape(kb.pred_iri(p));
        payloads.push(format!(
            "{{\"patterns\":[{{\"s\":\"?a\",\"p\":{p},\"o\":\"?b\"}},\
             {{\"s\":\"?b\",\"p\":{p},\"o\":\"?c\"}}],\"limit\":100}}"
        ));
    }
    payloads
}

fn run(argv: &[String]) -> Result<String, String> {
    let args = parse_args(argv)?;
    let kb = load_kb(&args.kb_path)?;
    let queries = if args.query_ratio > 0.0 {
        let q = query_payloads(&kb);
        if q.is_empty() {
            return Err("KB holds no predicates to query".to_string());
        }
        q
    } else {
        Vec::new()
    };

    let mut entities = args.entities.clone();
    if entities.is_empty() && args.mode != "healthz" {
        // Default workload: the first eight entities that actually appear
        // as subjects (every one of them is describable).
        entities = kb
            .entity_ids()
            .filter(|&e| !kb.preds_of_subject(e).is_empty())
            .take(8)
            .map(|e| kb.node_key(e).to_string())
            .collect();
        if entities.is_empty() {
            return Err("KB holds no describable entities".to_string());
        }
    }

    let mut server = serve(
        kb,
        ServeConfig {
            backend: args.backend,
            cache_entries: if args.cold { 0 } else { 4096 },
            max_inflight: args.clients.max(64),
            ..ServeConfig::default()
        },
    )
    .map_err(|e| format!("cannot start server: {e}"))?;
    let addr = server.addr();

    let targets: Vec<String> = match args.mode.as_str() {
        "healthz" => vec!["/healthz".to_string()],
        "summarize" => entities
            .iter()
            .map(|e| format!("/summarize/{}", percent_encode(e)))
            .collect(),
        _ => entities
            .iter()
            .map(|e| format!("/describe/{}", percent_encode(e)))
            .collect(),
    };

    // Warm-up pass (unless cold): prime the response cache and fault in
    // the lazily-built structures, so the measured run is steady-state.
    if !args.cold {
        let mut c = Client::connect(addr).map_err(|e| e.to_string())?;
        for t in &targets {
            let r = c.get(t).map_err(|e| e.to_string())?;
            if r.status != 200 {
                return Err(format!("warm-up {t} answered {}: {}", r.status, r.body));
            }
        }
    }

    let per_client = args.requests.div_ceil(args.clients);
    let total = per_client * args.clients;
    let ratio = args.ingest_ratio;
    let qratio = args.query_ratio;
    // Per-class latency histograms, shared across clients — `Histogram`
    // records are relaxed atomics, so every client folds straight in.
    let reads_hist = Histogram::new();
    let ingests_hist = Histogram::new();
    let queries_hist = Histogram::new();
    let t0 = Instant::now();
    // lint:allow(raw-thread-primitive): loadgen clients block on sockets for the whole run — parking them on the shared compute pool would starve the server it is measuring
    let results: Vec<Result<(), String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.clients)
            .map(|c| {
                let targets = &targets;
                let queries = &queries;
                let (reads_hist, ingests_hist, queries_hist) =
                    (&reads_hist, &ingests_hist, &queries_hist);
                scope.spawn(move || -> Result<(), String> {
                    let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
                    // Deterministic interleave: accumulate ratio credit
                    // per class, fire one request per whole unit.
                    let mut credit = 0.0f64;
                    let mut qcredit = 0.0f64;
                    for i in 0..per_client {
                        credit += ratio;
                        if credit >= 1.0 {
                            credit -= 1.0;
                            let body = ingest_payload(c, i);
                            let q0 = Instant::now();
                            let r = client
                                .post("/ingest", &body)
                                .map_err(|e| format!("/ingest: {e}"))?;
                            ingests_hist.record(q0.elapsed().as_nanos() as u64);
                            if r.status != 200 {
                                return Err(format!("/ingest answered {}: {}", r.status, r.body));
                            }
                            continue;
                        }
                        qcredit += qratio;
                        if qcredit >= 1.0 && !queries.is_empty() {
                            qcredit -= 1.0;
                            let body = &queries[(c + i) % queries.len()];
                            let q0 = Instant::now();
                            let r = client
                                .post("/query", body)
                                .map_err(|e| format!("/query: {e}"))?;
                            queries_hist.record(q0.elapsed().as_nanos() as u64);
                            if r.status != 200 {
                                return Err(format!("/query answered {}: {}", r.status, r.body));
                            }
                            continue;
                        }
                        let t = &targets[(c + i) % targets.len()];
                        let q0 = Instant::now();
                        let r = client.get(t).map_err(|e| format!("{t}: {e}"))?;
                        reads_hist.record(q0.elapsed().as_nanos() as u64);
                        if r.status != 200 {
                            return Err(format!("{t} answered {}: {}", r.status, r.body));
                        }
                    }
                    Ok(())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|_| Err("client panicked".into())))
            .collect()
    });
    let elapsed = t0.elapsed();
    for r in results {
        r?;
    }
    let reads = reads_hist.snapshot();
    let ingests = ingests_hist.snapshot();
    let queries_snap = queries_hist.snapshot();

    let mut stats_client = Client::connect(addr).map_err(|e| e.to_string())?;
    let stats = stats_client.get("/stats").map_err(|e| e.to_string())?;
    // Scrape before shutdown: `auto` points at the server this run booted.
    let scraped: Option<String> = match &args.metrics_url {
        Some(spec) => {
            let maddr = resolve_metrics_addr(spec, addr)?;
            let mut mc = Client::connect(maddr).map_err(|e| e.to_string())?;
            let r = mc.get("/v1/metrics").map_err(|e| e.to_string())?;
            if r.status != 200 {
                return Err(format!("/v1/metrics answered {}: {}", r.status, r.body));
            }
            Some(r.body)
        }
        None => None,
    };
    // Flight-recorder dump, also before shutdown: the run's own server is
    // the only one whose ring this process can reach.
    if let Some(path) = &args.dump_events {
        let mut ec = Client::connect(addr).map_err(|e| e.to_string())?;
        let r = ec.get("/v1/debug/events").map_err(|e| e.to_string())?;
        if r.status != 200 {
            return Err(format!(
                "/v1/debug/events answered {}: {}",
                r.status, r.body
            ));
        }
        std::fs::write(path, &r.body).map_err(|e| format!("writing {path}: {e}"))?;
    }
    server.shutdown();

    let throughput = total as f64 / elapsed.as_secs_f64();
    let mut out = String::new();
    use std::fmt::Write as _;
    let _ = writeln!(
        out,
        "serve-load: {total} requests ({} reads, {} ingests, {} queries), {} clients, mode {} ({})",
        reads.count(),
        ingests.count(),
        queries_snap.count(),
        args.clients,
        args.mode,
        if args.cold { "cold, cache off" } else { "warm" }
    );
    let _ = writeln!(out, "  throughput:  {throughput:.0} req/s");
    let _ = writeln!(out, "  read:        {}", quantile_line(&reads));
    if ingests.count() > 0 {
        let _ = writeln!(out, "  ingest:      {}", quantile_line(&ingests));
    }
    if queries_snap.count() > 0 {
        let _ = writeln!(out, "  query:       {}", quantile_line(&queries_snap));
    }
    if let Some(text) = scraped {
        if let Some(path) = &args.dump_metrics {
            std::fs::write(path, &text).map_err(|e| format!("writing {path}: {e}"))?;
        }
        // Server-observed latency next to the client-observed lines above:
        // the gap between the pairs is connection + parser + queueing time
        // outside the handler.
        let _ = writeln!(out, "  server-side (scraped from /v1/metrics):");
        let read_route = match args.mode.as_str() {
            "summarize" => "summarize",
            "healthz" => "healthz",
            _ => "describe",
        };
        let mut classes = vec![("read", read_route, reads.count())];
        classes.push(("ingest", "ingest", ingests.count()));
        classes.push(("query", "query", queries_snap.count()));
        for (class, route, client_n) in classes {
            if client_n == 0 {
                continue;
            }
            let labels = format!("route=\"{route}\",status=\"200\"");
            match parse_prom_histogram(&text, "remi_http_request_duration_ns", &labels) {
                Some(s) => {
                    let _ = writeln!(out, "    {class:<10} {}", quantile_line(&s));
                }
                None => {
                    let _ = writeln!(out, "    {class:<10} no server series for {labels}");
                }
            }
        }
        let _ = writeln!(
            out,
            "  metrics:     {} exposition lines",
            text.lines().count()
        );
    }
    let _ = writeln!(out, "  server:      {}", stats.body);
    Ok(out)
}
