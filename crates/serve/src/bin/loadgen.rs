//! `remi-serve-load` — load generator for the embedded HTTP service.
//!
//! Boots an in-process server over a KB file, fires concurrent keep-alive
//! clients at it, and reports throughput and latency quantiles (p50/p90/
//! p99/max) plus the server's own cache counters. The `--cold` flag
//! disables the response cache, so a warm/cold pair of runs measures how
//! much of the serving path caching removes.
//!
//! `--ingest-ratio F` turns the run into a mixed read/write workload:
//! that fraction of each client's requests become `POST /ingest` batches
//! of fresh synthetic triples (every batch unique, so the delta overlay
//! genuinely grows while miners read), and the report splits latency
//! quantiles per class. `--query-ratio F` does the same with
//! `POST /query` triple-pattern joins built from the KB's own
//! predicates, adding a third latency class to the report.
//!
//! Usage:
//!   remi-serve-load <kb.{rkb,rkb2,nt}> [--requests N] [--clients C]
//!                   [--backend csr|succinct] [--entities e:A,e:B,...]
//!                   [--mode describe|summarize|healthz] [--cold]
//!                   [--ingest-ratio F] [--query-ratio F]

#![forbid(unsafe_code)]

use std::process::ExitCode;
use std::time::Instant;

use remi_serve::client::Client;
use remi_serve::http::percent_encode;
use remi_serve::{serve, ServeConfig};

struct Args {
    kb_path: String,
    requests: usize,
    clients: usize,
    backend: Option<remi_kb::Backend>,
    entities: Vec<String>,
    mode: String,
    cold: bool,
    ingest_ratio: f64,
    query_ratio: f64,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        kb_path: String::new(),
        requests: 2000,
        clients: 4,
        backend: None,
        entities: Vec::new(),
        mode: "describe".to_string(),
        cold: false,
        ingest_ratio: 0.0,
        query_ratio: 0.0,
    };
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {a}"))
        };
        match a.as_str() {
            "--requests" => {
                args.requests = value()?
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| "--requests takes a positive int".to_string())?
            }
            "--clients" => {
                args.clients = value()?
                    .parse::<usize>()
                    .map_err(|_| "--clients takes an int".to_string())?
                    .max(1)
            }
            "--backend" => {
                let v = value()?;
                args.backend = Some(
                    remi_kb::Backend::parse(&v).ok_or_else(|| format!("unknown backend {v:?}"))?,
                )
            }
            "--entities" => {
                args.entities = value()?.split(',').map(str::to_string).collect();
            }
            "--mode" => {
                let v = value()?;
                if !matches!(v.as_str(), "describe" | "summarize" | "healthz") {
                    return Err(format!("unknown mode {v:?}"));
                }
                args.mode = v;
            }
            "--cold" => args.cold = true,
            "--ingest-ratio" => {
                args.ingest_ratio = value()?
                    .parse::<f64>()
                    .ok()
                    .filter(|r| (0.0..=1.0).contains(r))
                    .ok_or_else(|| "--ingest-ratio takes a float in 0..=1".to_string())?
            }
            "--query-ratio" => {
                args.query_ratio = value()?
                    .parse::<f64>()
                    .ok()
                    .filter(|r| (0.0..=1.0).contains(r))
                    .ok_or_else(|| "--query-ratio takes a float in 0..=1".to_string())?
            }
            p if !p.starts_with("--") && args.kb_path.is_empty() => args.kb_path = p.to_string(),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.kb_path.is_empty() {
        return Err("usage: remi-serve-load <kb> [--requests N] [--clients C] \
                    [--backend csr|succinct] [--entities a,b] \
                    [--mode describe|summarize|healthz] [--cold] \
                    [--ingest-ratio F] [--query-ratio F]"
            .to_string());
    }
    if args.ingest_ratio + args.query_ratio > 1.0 {
        return Err("--ingest-ratio and --query-ratio must sum to at most 1".to_string());
    }
    Ok(args)
}

/// A small unique N-Triples batch for one ingest request: grows the KB on
/// every call (deterministically — client and sequence number key it).
fn ingest_payload(client: usize, seq: usize) -> String {
    format!(
        "<e:load_c{client}_i{seq}> <p:loadIngested> <e:loadBatch_c{client}> .\n\
         <e:load_c{client}_i{seq}> <p:loadSeq> <e:seq_{seq}> .\n"
    )
}

/// Latency quantile helper over a sorted slice.
fn quantiles(sorted_us: &[u64]) -> String {
    if sorted_us.is_empty() {
        return "n/a".to_string();
    }
    let q = |p: f64| sorted_us[((sorted_us.len() - 1) as f64 * p) as usize];
    format!(
        "p50 {}µs  p90 {}µs  p99 {}µs  max {}µs",
        q(0.50),
        q(0.90),
        q(0.99),
        sorted_us.last().copied().unwrap_or(0),
    )
}

fn load_kb(path: &str) -> Result<remi_kb::KnowledgeBase, String> {
    // Same dispatch (and inverse fraction) as the `remi` CLI, so the
    // load generator exercises the exact KB the CLI would serve.
    remi_kb::load_path(std::path::Path::new(path), 0.01)
        .map_err(|e| format!("cannot read {path}: {e}"))
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `POST /query` payloads built from the KB's own predicates: single
/// full-extent patterns over the fattest predicates plus one 2-pattern
/// chain join, so the mix exercises both engine paths.
fn query_payloads(kb: &remi_kb::KnowledgeBase) -> Vec<String> {
    let mut preds: Vec<remi_kb::PredId> = kb
        .pred_ids()
        .filter(|&p| !kb.is_inverse(p) && kb.index(p).num_facts() > 0)
        .collect();
    preds.sort_by_key(|&p| std::cmp::Reverse(kb.index(p).num_facts()));
    preds.truncate(4);
    let mut payloads: Vec<String> = preds
        .iter()
        .map(|&p| {
            format!(
                "{{\"patterns\":[{{\"s\":\"?s\",\"p\":{},\"o\":\"?o\"}}],\"limit\":100}}",
                remi_serve::json::escape(kb.pred_iri(p))
            )
        })
        .collect();
    if let Some(&p) = preds.first() {
        let p = remi_serve::json::escape(kb.pred_iri(p));
        payloads.push(format!(
            "{{\"patterns\":[{{\"s\":\"?a\",\"p\":{p},\"o\":\"?b\"}},\
             {{\"s\":\"?b\",\"p\":{p},\"o\":\"?c\"}}],\"limit\":100}}"
        ));
    }
    payloads
}

fn run(argv: &[String]) -> Result<String, String> {
    let args = parse_args(argv)?;
    let kb = load_kb(&args.kb_path)?;
    let queries = if args.query_ratio > 0.0 {
        let q = query_payloads(&kb);
        if q.is_empty() {
            return Err("KB holds no predicates to query".to_string());
        }
        q
    } else {
        Vec::new()
    };

    let mut entities = args.entities.clone();
    if entities.is_empty() && args.mode != "healthz" {
        // Default workload: the first eight entities that actually appear
        // as subjects (every one of them is describable).
        entities = kb
            .entity_ids()
            .filter(|&e| !kb.preds_of_subject(e).is_empty())
            .take(8)
            .map(|e| kb.node_key(e).to_string())
            .collect();
        if entities.is_empty() {
            return Err("KB holds no describable entities".to_string());
        }
    }

    let mut server = serve(
        kb,
        ServeConfig {
            backend: args.backend,
            cache_entries: if args.cold { 0 } else { 4096 },
            max_inflight: args.clients.max(64),
            ..ServeConfig::default()
        },
    )
    .map_err(|e| format!("cannot start server: {e}"))?;
    let addr = server.addr();

    let targets: Vec<String> = match args.mode.as_str() {
        "healthz" => vec!["/healthz".to_string()],
        "summarize" => entities
            .iter()
            .map(|e| format!("/summarize/{}", percent_encode(e)))
            .collect(),
        _ => entities
            .iter()
            .map(|e| format!("/describe/{}", percent_encode(e)))
            .collect(),
    };

    // Warm-up pass (unless cold): prime the response cache and fault in
    // the lazily-built structures, so the measured run is steady-state.
    if !args.cold {
        let mut c = Client::connect(addr).map_err(|e| e.to_string())?;
        for t in &targets {
            let r = c.get(t).map_err(|e| e.to_string())?;
            if r.status != 200 {
                return Err(format!("warm-up {t} answered {}: {}", r.status, r.body));
            }
        }
    }

    let per_client = args.requests.div_ceil(args.clients);
    let total = per_client * args.clients;
    let ratio = args.ingest_ratio;
    let qratio = args.query_ratio;
    let t0 = Instant::now();
    // Per-class latencies: (reads, ingests, queries).
    type ClassLat = (Vec<u64>, Vec<u64>, Vec<u64>);
    // lint:allow(raw-thread-primitive): loadgen clients block on sockets for the whole run — parking them on the shared compute pool would starve the server it is measuring
    let results: Vec<Result<ClassLat, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.clients)
            .map(|c| {
                let targets = &targets;
                let queries = &queries;
                scope.spawn(move || -> Result<ClassLat, String> {
                    let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
                    let mut reads = Vec::with_capacity(per_client);
                    let mut writes = Vec::new();
                    let mut query_lat = Vec::new();
                    // Deterministic interleave: accumulate ratio credit
                    // per class, fire one request per whole unit.
                    let mut credit = 0.0f64;
                    let mut qcredit = 0.0f64;
                    for i in 0..per_client {
                        credit += ratio;
                        if credit >= 1.0 {
                            credit -= 1.0;
                            let body = ingest_payload(c, i);
                            let q0 = Instant::now();
                            let r = client
                                .post("/ingest", &body)
                                .map_err(|e| format!("/ingest: {e}"))?;
                            writes.push(q0.elapsed().as_micros() as u64);
                            if r.status != 200 {
                                return Err(format!("/ingest answered {}: {}", r.status, r.body));
                            }
                            continue;
                        }
                        qcredit += qratio;
                        if qcredit >= 1.0 && !queries.is_empty() {
                            qcredit -= 1.0;
                            let body = &queries[(c + i) % queries.len()];
                            let q0 = Instant::now();
                            let r = client
                                .post("/query", body)
                                .map_err(|e| format!("/query: {e}"))?;
                            query_lat.push(q0.elapsed().as_micros() as u64);
                            if r.status != 200 {
                                return Err(format!("/query answered {}: {}", r.status, r.body));
                            }
                            continue;
                        }
                        let t = &targets[(c + i) % targets.len()];
                        let q0 = Instant::now();
                        let r = client.get(t).map_err(|e| format!("{t}: {e}"))?;
                        reads.push(q0.elapsed().as_micros() as u64);
                        if r.status != 200 {
                            return Err(format!("{t} answered {}: {}", r.status, r.body));
                        }
                    }
                    Ok((reads, writes, query_lat))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|_| Err("client panicked".into())))
            .collect()
    });
    let elapsed = t0.elapsed();
    let mut reads_us: Vec<u64> = Vec::with_capacity(total);
    let mut ingests_us: Vec<u64> = Vec::new();
    let mut queries_us: Vec<u64> = Vec::new();
    for r in results {
        let (reads, writes, query_lat) = r?;
        reads_us.extend(reads);
        ingests_us.extend(writes);
        queries_us.extend(query_lat);
    }
    reads_us.sort_unstable();
    ingests_us.sort_unstable();
    queries_us.sort_unstable();

    let mut stats_client = Client::connect(addr).map_err(|e| e.to_string())?;
    let stats = stats_client.get("/stats").map_err(|e| e.to_string())?;
    server.shutdown();

    let throughput = total as f64 / elapsed.as_secs_f64();
    let mut out = String::new();
    use std::fmt::Write as _;
    let _ = writeln!(
        out,
        "serve-load: {total} requests ({} reads, {} ingests, {} queries), {} clients, mode {} ({})",
        reads_us.len(),
        ingests_us.len(),
        queries_us.len(),
        args.clients,
        args.mode,
        if args.cold { "cold, cache off" } else { "warm" }
    );
    let _ = writeln!(out, "  throughput:  {throughput:.0} req/s");
    let _ = writeln!(out, "  read:        {}", quantiles(&reads_us));
    if !ingests_us.is_empty() {
        let _ = writeln!(out, "  ingest:      {}", quantiles(&ingests_us));
    }
    if !queries_us.is_empty() {
        let _ = writeln!(out, "  query:       {}", quantiles(&queries_us));
    }
    let _ = writeln!(out, "  server:      {}", stats.body);
    Ok(out)
}
