//! `remi-serve-load` — load generator for the embedded HTTP service.
//!
//! Boots an in-process server over a KB file, fires concurrent keep-alive
//! clients at it, and reports throughput and latency quantiles (p50/p90/
//! p99/max) plus the server's own cache counters. The `--cold` flag
//! disables the response cache, so a warm/cold pair of runs measures how
//! much of the serving path caching removes.
//!
//! Usage:
//!   remi-serve-load <kb.{rkb,rkb2,nt}> [--requests N] [--clients C]
//!                   [--backend csr|succinct] [--entities e:A,e:B,...]
//!                   [--mode describe|summarize|healthz] [--cold]

use std::process::ExitCode;
use std::time::Instant;

use remi_serve::client::Client;
use remi_serve::http::percent_encode;
use remi_serve::{serve, ServeConfig};

struct Args {
    kb_path: String,
    requests: usize,
    clients: usize,
    backend: Option<remi_kb::Backend>,
    entities: Vec<String>,
    mode: String,
    cold: bool,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        kb_path: String::new(),
        requests: 2000,
        clients: 4,
        backend: None,
        entities: Vec::new(),
        mode: "describe".to_string(),
        cold: false,
    };
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {a}"))
        };
        match a.as_str() {
            "--requests" => {
                args.requests = value()?
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| "--requests takes a positive int".to_string())?
            }
            "--clients" => {
                args.clients = value()?
                    .parse::<usize>()
                    .map_err(|_| "--clients takes an int".to_string())?
                    .max(1)
            }
            "--backend" => {
                let v = value()?;
                args.backend = Some(
                    remi_kb::Backend::parse(&v).ok_or_else(|| format!("unknown backend {v:?}"))?,
                )
            }
            "--entities" => {
                args.entities = value()?.split(',').map(str::to_string).collect();
            }
            "--mode" => {
                let v = value()?;
                if !matches!(v.as_str(), "describe" | "summarize" | "healthz") {
                    return Err(format!("unknown mode {v:?}"));
                }
                args.mode = v;
            }
            "--cold" => args.cold = true,
            p if !p.starts_with("--") && args.kb_path.is_empty() => args.kb_path = p.to_string(),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.kb_path.is_empty() {
        return Err("usage: remi-serve-load <kb> [--requests N] [--clients C] \
                    [--backend csr|succinct] [--entities a,b] \
                    [--mode describe|summarize|healthz] [--cold]"
            .to_string());
    }
    Ok(args)
}

fn load_kb(path: &str) -> Result<remi_kb::KnowledgeBase, String> {
    // Same dispatch (and inverse fraction) as the `remi` CLI, so the
    // load generator exercises the exact KB the CLI would serve.
    remi_kb::load_path(std::path::Path::new(path), 0.01)
        .map_err(|e| format!("cannot read {path}: {e}"))
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(argv: &[String]) -> Result<String, String> {
    let args = parse_args(argv)?;
    let kb = load_kb(&args.kb_path)?;

    let mut entities = args.entities.clone();
    if entities.is_empty() && args.mode != "healthz" {
        // Default workload: the first eight entities that actually appear
        // as subjects (every one of them is describable).
        entities = kb
            .entity_ids()
            .filter(|&e| !kb.preds_of_subject(e).is_empty())
            .take(8)
            .map(|e| kb.node_key(e).to_string())
            .collect();
        if entities.is_empty() {
            return Err("KB holds no describable entities".to_string());
        }
    }

    let mut server = serve(
        kb,
        ServeConfig {
            backend: args.backend,
            cache_entries: if args.cold { 0 } else { 4096 },
            max_inflight: args.clients.max(64),
            ..ServeConfig::default()
        },
    )
    .map_err(|e| format!("cannot start server: {e}"))?;
    let addr = server.addr();

    let targets: Vec<String> = match args.mode.as_str() {
        "healthz" => vec!["/healthz".to_string()],
        "summarize" => entities
            .iter()
            .map(|e| format!("/summarize/{}", percent_encode(e)))
            .collect(),
        _ => entities
            .iter()
            .map(|e| format!("/describe/{}", percent_encode(e)))
            .collect(),
    };

    // Warm-up pass (unless cold): prime the response cache and fault in
    // the lazily-built structures, so the measured run is steady-state.
    if !args.cold {
        let mut c = Client::connect(addr).map_err(|e| e.to_string())?;
        for t in &targets {
            let r = c.get(t).map_err(|e| e.to_string())?;
            if r.status != 200 {
                return Err(format!("warm-up {t} answered {}: {}", r.status, r.body));
            }
        }
    }

    let per_client = args.requests.div_ceil(args.clients);
    let total = per_client * args.clients;
    let t0 = Instant::now();
    let mut latencies_us: Vec<u64> = Vec::with_capacity(total);
    let results: Vec<Result<Vec<u64>, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.clients)
            .map(|c| {
                let targets = &targets;
                scope.spawn(move || -> Result<Vec<u64>, String> {
                    let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
                    let mut lat = Vec::with_capacity(per_client);
                    for i in 0..per_client {
                        let t = &targets[(c + i) % targets.len()];
                        let q0 = Instant::now();
                        let r = client.get(t).map_err(|e| format!("{t}: {e}"))?;
                        lat.push(q0.elapsed().as_micros() as u64);
                        if r.status != 200 {
                            return Err(format!("{t} answered {}: {}", r.status, r.body));
                        }
                    }
                    Ok(lat)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|_| Err("client panicked".into())))
            .collect()
    });
    let elapsed = t0.elapsed();
    for r in results {
        latencies_us.extend(r?);
    }
    latencies_us.sort_unstable();

    let mut stats_client = Client::connect(addr).map_err(|e| e.to_string())?;
    let stats = stats_client.get("/stats").map_err(|e| e.to_string())?;
    server.shutdown();

    let q = |p: f64| latencies_us[((latencies_us.len() - 1) as f64 * p) as usize];
    let throughput = total as f64 / elapsed.as_secs_f64();
    let mut out = String::new();
    use std::fmt::Write as _;
    let _ = writeln!(
        out,
        "serve-load: {total} requests, {} clients, mode {} ({})",
        args.clients,
        args.mode,
        if args.cold { "cold, cache off" } else { "warm" }
    );
    let _ = writeln!(out, "  throughput:  {throughput:.0} req/s");
    let _ = writeln!(
        out,
        "  latency:     p50 {}µs  p90 {}µs  p99 {}µs  max {}µs",
        q(0.50),
        q(0.90),
        q(0.99),
        latencies_us.last().copied().unwrap_or(0),
    );
    let _ = writeln!(out, "  server:      {}", stats.body);
    Ok(out)
}
