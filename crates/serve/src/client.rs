//! A tiny blocking HTTP/1.1 client: just enough to drive the server over
//! keep-alive connections from tests, the example, and the load
//! generator. Not a general-purpose client — it assumes the well-formed,
//! `Content-Length`-framed responses this server emits.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed HTTP response.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Header `(name, value)` pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: String,
}

impl HttpResponse {
    /// First value of a (lower-case) header name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// One keep-alive connection to a server.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    /// Bytes read past the previous response (pipelining slack).
    residue: Vec<u8>,
}

impl Client {
    /// Connects with a 10 s I/O timeout.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        stream.set_write_timeout(Some(Duration::from_secs(10)))?;
        Ok(Client {
            stream,
            residue: Vec::new(),
        })
    }

    /// Issues a `GET` and reads the full response.
    pub fn get(&mut self, target: &str) -> std::io::Result<HttpResponse> {
        self.request("GET", target, None)
    }

    /// Issues a `POST` with a JSON body and reads the full response.
    pub fn post(&mut self, target: &str, body: &str) -> std::io::Result<HttpResponse> {
        self.request("POST", target, Some(body))
    }

    /// Issues one request on the connection.
    pub fn request(
        &mut self,
        method: &str,
        target: &str,
        body: Option<&str>,
    ) -> std::io::Result<HttpResponse> {
        let mut head = format!("{method} {target} HTTP/1.1\r\nHost: remi\r\n");
        if let Some(body) = body {
            head.push_str(&format!("Content-Length: {}\r\n", body.len()));
        }
        head.push_str("\r\n");
        if let Some(body) = body {
            head.push_str(body);
        }
        self.stream.write_all(head.as_bytes())?;
        self.read_response()
    }

    /// Sends raw bytes without awaiting a response (for protocol tests).
    pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(bytes)
    }

    /// Reads one `Content-Length`-framed response.
    pub fn read_response(&mut self) -> std::io::Result<HttpResponse> {
        let mut buf = std::mem::take(&mut self.residue);
        let mut chunk = [0u8; 4096];
        let head_end = loop {
            if let Some(pos) = crate::http::find_subslice(&buf, b"\r\n\r\n") {
                break pos;
            }
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed before response head",
                ));
            }
            buf.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8_lossy(&buf[..head_end]).to_string();
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or("");
        let status = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("malformed status line {status_line:?}"),
                )
            })?;
        let headers: Vec<(String, String)> = lines
            .filter_map(|line| line.split_once(':'))
            .map(|(n, v)| (n.to_ascii_lowercase(), v.trim().to_string()))
            .collect();
        let content_length = headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .and_then(|(_, v)| v.parse::<usize>().ok())
            .unwrap_or(0);
        let body_start = head_end + 4;
        while buf.len() < body_start + content_length {
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-body",
                ));
            }
            buf.extend_from_slice(&chunk[..n]);
        }
        let body =
            String::from_utf8_lossy(&buf[body_start..body_start + content_length]).to_string();
        self.residue = buf.split_off(body_start + content_length);
        Ok(HttpResponse {
            status,
            headers,
            body,
        })
    }
}
