//! `GET /debug/events` — the flight-recorder endpoint — plus the serve
//! layer's own event vocabulary (500s, slow requests) and the stderr
//! tail dump shared by the slow-request log and the 500 path.
//!
//! The recorder is process-wide state: the planner, the live KB, and
//! the pool all emit into the one ring `serve()` created, and this
//! endpoint reads it back without copying more than the ring holds —
//! the response is bounded by the ring capacity no matter how long the
//! server has run.

use remi_kb::delta::Snapshot;
use remi_obs::{
    Channel, EventId, EventRecord, EventSpec, FieldKind, FieldSpec, Recorder, Severity,
};

use crate::http::Request;
use crate::json::{self, JsonObject};
use crate::{AppState, Response, Trace};

/// How many trailing events the slow-request / 500 stderr dumps print.
const DUMP_TAIL: usize = 8;

/// The route vocabulary events carry as an enum field: every
/// `router::TABLE` name plus the pre-dispatch `"unmatched"` sentinel at
/// index 0 (also the decode fallback for an unknown index).
const ROUTE_NAMES: &[&str] = &[
    "unmatched",
    "healthz",
    "stats",
    "metrics",
    "describe",
    "describe_batch",
    "summarize",
    "ingest",
    "query",
    "debug_events",
];

/// The enum-field index of `route` (0, `"unmatched"`, when the route is
/// not in the vocabulary — cannot happen for table-dispatched requests).
fn route_index(route: &str) -> u64 {
    ROUTE_NAMES.iter().position(|r| *r == route).unwrap_or(0) as u64
}

/// Pre-defined serve-layer event ids, interned once at boot.
#[derive(Debug, Clone)]
pub(crate) struct HttpEvents {
    error: EventId,
    slow: EventId,
}

impl HttpEvents {
    /// Interns the HTTP event specs on `recorder`.
    pub(crate) fn new(recorder: &Recorder) -> HttpEvents {
        HttpEvents {
            error: recorder.define(EventSpec {
                name: "http_500",
                channel: Channel::Http,
                severity: Severity::Error,
                fields: &[
                    FieldSpec {
                        key: "route",
                        kind: FieldKind::Enum(ROUTE_NAMES),
                    },
                    FieldSpec {
                        key: "status",
                        kind: FieldKind::U64,
                    },
                ],
            }),
            slow: recorder.define(EventSpec {
                name: "http_slow",
                channel: Channel::Http,
                severity: Severity::Warn,
                fields: &[
                    FieldSpec {
                        key: "route",
                        kind: FieldKind::Enum(ROUTE_NAMES),
                    },
                    FieldSpec {
                        key: "total_us",
                        kind: FieldKind::U64,
                    },
                ],
            }),
        }
    }

    /// Records a server-error response (5xx other than load-shed 503s).
    pub(crate) fn record_error(&self, recorder: &Recorder, ts_ns: u64, route: &str, status: u16) {
        recorder.emit(self.error, ts_ns, &[route_index(route), u64::from(status)]);
    }

    /// Records a request past the `--slow-request-ms` threshold.
    pub(crate) fn record_slow(&self, recorder: &Recorder, ts_ns: u64, route: &str, total_ns: u64) {
        recorder.emit(self.slow, ts_ns, &[route_index(route), total_ns / 1_000]);
    }
}

/// Prints the recorder's most recent events to stderr, one line each,
/// prefixed with `why` so the slow-request and 500 dumps group in logs.
pub(crate) fn dump_tail(state: &AppState, why: &str) {
    for event in state.events.tail(DUMP_TAIL) {
        // lint:allow(print-in-library): the recorder tail is the operator-facing context line the slow/500 log exists to emit
        eprintln!("{why} {event}");
    }
}

/// Renders one decoded event as a JSON object.
fn event_json(e: &EventRecord) -> String {
    let mut fields = String::from("{");
    for (i, (key, value)) in e.fields.iter().enumerate() {
        if i > 0 {
            fields.push(',');
        }
        // `json::escape` renders the quoted JSON string form.
        fields.push_str(&json::escape(key));
        fields.push(':');
        match value {
            remi_obs::FieldValue::U64(v) => fields.push_str(&v.to_string()),
            remi_obs::FieldValue::Bool(v) => fields.push_str(if *v { "true" } else { "false" }),
            remi_obs::FieldValue::Str(s) => fields.push_str(&json::escape(s)),
        }
    }
    fields.push('}');
    JsonObject::new()
        .field_u64("seq", e.seq)
        .field_u64("ts_ns", e.ts_ns)
        .field_str("channel", e.channel.name())
        .field_str("severity", e.severity.name())
        .field_str("event", e.name)
        .field_raw("fields", &fields)
        .finish()
}

/// The `GET /debug/events` handler (a row of the route table): the
/// recorder's surviving events, oldest first, optionally filtered by
/// `?channel=`, `?severity=` (minimum), `?since=` (sequence number,
/// exclusive of nothing — events with `seq >= since`), and `?limit=`
/// (newest N of the filtered set). The response is bounded by the ring
/// capacity regardless of parameters.
pub(crate) fn handle_debug_events(
    state: &AppState,
    _snap: &Snapshot,
    req: &Request,
    _tail: &str,
    _trace: &mut Trace<'_>,
) -> Response {
    let channel = match req.query_param("channel") {
        None => None,
        Some(s) => match Channel::parse(s) {
            Some(c) => Some(c),
            None => {
                return Response::api(&crate::ApiError::bad_param(
                    "channel",
                    format!("unknown channel {s:?} (expected query, kb, pool, or http)"),
                ))
            }
        },
    };
    let min_severity = match req.query_param("severity") {
        None => None,
        Some(s) => match Severity::parse(s) {
            Some(sev) => Some(sev),
            None => {
                return Response::api(&crate::ApiError::bad_param(
                    "severity",
                    format!("unknown severity {s:?} (expected debug, info, warn, or error)"),
                ))
            }
        },
    };
    let since = match req.query_param("since") {
        None => 0,
        Some(s) => match s.parse::<u64>() {
            Ok(v) => v,
            Err(_) => {
                return Response::api(&crate::ApiError::bad_param(
                    "since",
                    format!("since must be a sequence number, got {s:?}"),
                ))
            }
        },
    };
    let capacity = state.events.capacity();
    let limit = match req.query_param("limit") {
        None => capacity,
        Some(s) => match s.parse::<usize>() {
            Ok(v) if (1..=capacity).contains(&v) => v,
            _ => {
                return Response::api(&crate::ApiError::bad_param(
                    "limit",
                    format!("limit must be an integer in 1..={capacity}"),
                ))
            }
        },
    };
    let mut events = state.events.events_since(since);
    events.retain(|e| {
        channel.is_none_or(|c| e.channel == c) && min_severity.is_none_or(|s| e.severity >= s)
    });
    if events.len() > limit {
        events.drain(..events.len() - limit);
    }
    let rendered: Vec<String> = events.iter().map(event_json).collect();
    Response::ok(
        JsonObject::new()
            .field_u64("head", state.events.head())
            .field_u64("capacity", capacity as u64)
            .field_u64("count", rendered.len() as u64)
            .field_raw("events", &json::array_raw(rendered))
            .finish(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_vocabulary_covers_the_table() {
        for route in crate::router::TABLE {
            assert!(
                ROUTE_NAMES.contains(&route.name),
                "route {:?} missing from ROUTE_NAMES",
                route.name
            );
        }
        assert_eq!(route_index("unmatched"), 0);
        assert_eq!(route_index("not-a-route"), 0);
        assert_ne!(route_index("query"), 0);
    }

    #[test]
    fn event_json_renders_every_field_kind() {
        let e = EventRecord {
            seq: 7,
            ts_ns: 1500,
            name: "query_plan",
            channel: Channel::Query,
            severity: Severity::Info,
            fields: vec![
                ("patterns", remi_obs::FieldValue::U64(2)),
                ("truncated", remi_obs::FieldValue::Bool(false)),
                ("path", remi_obs::FieldValue::Str("merge")),
            ],
        };
        assert_eq!(
            event_json(&e),
            "{\"seq\":7,\"ts_ns\":1500,\"channel\":\"query\",\"severity\":\"info\",\
             \"event\":\"query_plan\",\"fields\":{\"patterns\":2,\"truncated\":false,\
             \"path\":\"merge\"}}"
        );
    }
}
