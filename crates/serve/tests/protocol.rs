//! Property tests for the HTTP request parser: arbitrary fragmentation
//! must never change a parse, and malformed or random input must map to
//! clean 4xx/505 rejections — never a panic, never an accepted garbage
//! request.

use proptest::prelude::*;
use remi_serve::http::{ParseError, Parsed, Request, RequestParser};

/// Parses a byte stream in one shot.
fn parse_once(bytes: &[u8]) -> Result<Option<Request>, ParseError> {
    let mut p = RequestParser::new();
    p.push(bytes);
    match p.try_parse()? {
        Parsed::Complete(r) => Ok(Some(r)),
        Parsed::NeedMore => Ok(None),
    }
}

/// Parses a byte stream split into fragments at the given cut points.
fn parse_fragmented(bytes: &[u8], cuts: &[usize]) -> Result<Option<Request>, ParseError> {
    let mut sorted: Vec<usize> = cuts.iter().map(|&c| c % (bytes.len() + 1)).collect();
    sorted.sort_unstable();
    sorted.dedup();
    let mut p = RequestParser::new();
    let mut last = 0;
    let mut result = None;
    for cut in sorted.into_iter().chain([bytes.len()]) {
        p.push(&bytes[last..cut]);
        last = cut;
        while let Parsed::Complete(r) = p.try_parse()? {
            assert!(result.is_none(), "parsed more than one request");
            result = Some(r);
        }
    }
    Ok(result)
}

/// Builds a syntactically valid request from generator components.
fn build_request(
    post: bool,
    segments: &[String],
    params: &[(String, String)],
    body: &[u8],
    keep_alive: bool,
) -> Vec<u8> {
    let mut target = String::new();
    for s in segments {
        target.push('/');
        target.push_str(s);
    }
    if target.is_empty() {
        target.push('/');
    }
    for (i, (k, v)) in params.iter().enumerate() {
        target.push(if i == 0 { '?' } else { '&' });
        target.push_str(k);
        target.push('=');
        target.push_str(v);
    }
    let mut raw = format!(
        "{} {target} HTTP/1.1\r\n",
        if post { "POST" } else { "GET" }
    );
    raw.push_str("Host: fuzz\r\n");
    if post {
        raw.push_str(&format!("Content-Length: {}\r\n", body.len()));
    }
    if !keep_alive {
        raw.push_str("Connection: close\r\n");
    }
    raw.push_str("\r\n");
    let mut bytes = raw.into_bytes();
    if post {
        bytes.extend_from_slice(body);
    }
    bytes
}

/// Token charset for generated path segments / parameter names.
fn token(seed: &[u8]) -> String {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789-_.~";
    seed.iter()
        .map(|&b| ALPHABET[b as usize % ALPHABET.len()] as char)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A valid request parses identically no matter how the bytes are
    /// fragmented across socket reads.
    #[test]
    fn fragmentation_never_changes_a_parse(
        post in proptest::arbitrary::any::<bool>(),
        keep_alive in proptest::arbitrary::any::<bool>(),
        seg_seeds in proptest::collection::vec(
            proptest::collection::vec(0u8..255, 1..12), 0..4),
        param_seeds in proptest::collection::vec(
            (proptest::collection::vec(0u8..255, 1..6),
             proptest::collection::vec(0u8..255, 0..8)), 0..4),
        body in proptest::collection::vec(proptest::arbitrary::any::<u8>(), 0..200),
        cuts in proptest::collection::vec(0usize..4096, 0..24),
    ) {
        let segments: Vec<String> = seg_seeds.iter().map(|s| token(s)).collect();
        let params: Vec<(String, String)> = param_seeds
            .iter()
            .map(|(k, v)| (token(k), token(v)))
            .collect();
        let raw = build_request(post, &segments, &params, &body, keep_alive);

        let whole = parse_once(&raw).expect("valid request must parse");
        let pieces = parse_fragmented(&raw, &cuts).expect("valid request must parse");
        let whole = whole.expect("one-shot parse must complete");
        let pieces = pieces.expect("fragmented parse must complete");
        prop_assert_eq!(&whole, &pieces);
        prop_assert_eq!(whole.keep_alive, keep_alive);
        if post {
            prop_assert_eq!(&whole.body, &body);
        }
    }

    /// Random bytes never panic the parser: every outcome is NeedMore,
    /// a (miraculously) complete parse, or a 400/413/505 rejection.
    #[test]
    fn random_bytes_reject_cleanly(
        bytes in proptest::collection::vec(proptest::arbitrary::any::<u8>(), 0..2048),
        cuts in proptest::collection::vec(0usize..2048, 0..8),
    ) {
        match parse_fragmented(&bytes, &cuts) {
            Ok(_) => {}
            Err(e) => prop_assert!(
                matches!(e.status, 400 | 413 | 505),
                "unexpected status {} for {:?}", e.status, e.message
            ),
        }
    }

    /// Corrupting one byte of a valid request never panics and never
    /// desynchronises the parser into accepting a different body length.
    #[test]
    fn single_byte_corruption_rejects_cleanly(
        seg_seeds in proptest::collection::vec(
            proptest::collection::vec(0u8..255, 1..12), 1..3),
        body in proptest::collection::vec(proptest::arbitrary::any::<u8>(), 0..64),
        position in proptest::arbitrary::any::<usize>(),
        replacement in proptest::arbitrary::any::<u8>(),
    ) {
        let segments: Vec<String> = seg_seeds.iter().map(|s| token(s)).collect();
        let mut raw = build_request(true, &segments, &[], &body, true);
        let position = position % raw.len();
        raw[position] = replacement;
        match parse_once(&raw) {
            Ok(Some(r)) => {
                // Still parses: framing must be intact (the flip landed in
                // a value position). The parser's own invariants hold.
                prop_assert!(r.body.len() <= raw.len());
            }
            Ok(None) => {} // flipped a framing byte: parser waits for more
            Err(e) => prop_assert!(matches!(e.status, 400 | 413 | 505)),
        }
    }
}
