//! End-to-end tests for the embedded HTTP service: a real server on an
//! ephemeral port, real TCP requests, and responses asserted
//! byte-identical to direct `remi_core`/`remi_essum` library output on
//! both storage backends — including the cache-hit path.

use remi_kb::{Backend, KnowledgeBase};
use remi_serve::client::Client;
use remi_serve::http::percent_encode;
use remi_serve::{describe_body, query_body, serve, summarize_body, ServeConfig, ServerHandle};

/// The shared test world: a small synthetic DBpedia-like KB.
fn world() -> std::sync::Arc<remi_synth::SynthKb> {
    remi_synth::fixtures::dbpedia(0.3, 11)
}

/// A few describable target IRIs from distinct classes.
fn target_iris(synth: &remi_synth::SynthKb) -> Vec<String> {
    ["Person", "Settlement", "Film"]
        .iter()
        .flat_map(|class| synth.members(class).iter().take(2))
        .map(|&e| synth.kb.node_key(e).to_string())
        .collect()
}

fn boot(kb: KnowledgeBase, config: ServeConfig) -> ServerHandle {
    serve(kb, config).expect("server must bind an ephemeral port")
}

/// Describe and summarize over HTTP answer exactly the bytes the library
/// renders, on both backends, cold and cached.
#[test]
fn responses_are_byte_identical_to_library_output_on_both_backends() {
    let synth = world();
    let iris = target_iris(&synth);
    assert!(!iris.is_empty(), "fixture lost its classes");
    let threads = ServeConfig::default().threads;

    let mut bodies_by_backend: Vec<Vec<String>> = Vec::new();
    for backend in [Backend::Csr, Backend::Succinct] {
        let kb = synth.kb.clone().with_backend(backend);
        let mut server = boot(
            kb.clone(),
            ServeConfig {
                backend: Some(backend),
                ..ServeConfig::default()
            },
        );
        let mut client = Client::connect(server.addr()).unwrap();
        let mut bodies = Vec::new();

        for iri in &iris {
            // Cold: mined on demand.
            let cold = client
                .get(&format!("/describe/{}", percent_encode(iri)))
                .unwrap();
            assert_eq!(cold.status, 200, "{iri}: {}", cold.body);
            assert_eq!(cold.header("x-remi-cache"), Some("miss"), "{iri}");
            // The HTTP body is exactly the library rendering.
            let direct = describe_body(&kb, iri, 1, threads).unwrap();
            assert_eq!(cold.body, direct, "describe({iri}) on {backend}");

            // Warm: served from the cache, byte-identical.
            let warm = client
                .get(&format!("/describe/{}", percent_encode(iri)))
                .unwrap();
            assert_eq!(warm.header("x-remi-cache"), Some("hit"), "{iri}");
            assert_eq!(warm.body, cold.body, "cache changed bytes for {iri}");

            // Summarize: same contract.
            let summary = client
                .get(&format!("/summarize/{}?k=4", percent_encode(iri)))
                .unwrap();
            assert_eq!(summary.status, 200, "{iri}: {}", summary.body);
            let direct = summarize_body(&kb, iri, 4, "remi", None).unwrap();
            assert_eq!(summary.body, direct, "summarize({iri}) on {backend}");

            bodies.push(cold.body);
            bodies.push(summary.body);
        }
        bodies_by_backend.push(bodies);
        server.shutdown();
    }

    // The two backends answered byte-identically.
    assert_eq!(
        bodies_by_backend[0], bodies_by_backend[1],
        "CSR and succinct servers disagree"
    );
}

/// The `?backend=` query parameter serves from a lazily-materialised
/// second backend without changing a single response byte.
#[test]
fn backend_query_param_is_transparent() {
    let synth = world();
    let iri = &target_iris(&synth)[0];
    let mut server = boot(synth.kb.clone(), ServeConfig::default());
    let mut client = Client::connect(server.addr()).unwrap();

    let native = client
        .get(&format!("/describe/{}", percent_encode(iri)))
        .unwrap();
    assert_eq!(native.status, 200);
    // Succinct answers from the cache (same request fingerprint) — force a
    // different k to bypass it and actually exercise the other layout.
    let succinct = client
        .get(&format!(
            "/describe/{}?backend=succinct&k=2",
            percent_encode(iri)
        ))
        .unwrap();
    assert_eq!(succinct.status, 200, "{}", succinct.body);
    let csr = client
        .get(&format!(
            "/describe/{}?backend=csr&k=2",
            percent_encode(iri)
        ))
        .unwrap();
    // k=2 was cached by the succinct request; bodies must match anyway.
    assert_eq!(succinct.body, csr.body);

    let stats = client.get("/stats").unwrap();
    assert!(stats.body.contains("\"succinct\""), "{}", stats.body);
    server.shutdown();
}

/// Batched describe shares one miner and embeds exactly the per-entity
/// GET bodies.
#[test]
fn batched_describe_matches_individual_gets() {
    let synth = world();
    let iris = target_iris(&synth);
    let mut server = boot(synth.kb.clone(), ServeConfig::default());
    let mut client = Client::connect(server.addr()).unwrap();

    // Duplicate IRIs in the batch must de-duplicate onto one mining task
    // (the batch now fans out across pool workers) and still answer one
    // result per requested slot, in order.
    let padded: Vec<&String> = iris.iter().chain(iris.first()).collect();
    let payload = format!(
        "{{\"entities\":[{}]}}",
        padded
            .iter()
            .map(|i| remi_serve::json::escape(i))
            .collect::<Vec<_>>()
            .join(",")
    );
    let batch = client.post("/describe", &payload).unwrap();
    assert_eq!(batch.status, 200, "{}", batch.body);
    assert!(
        batch
            .body
            .starts_with(&format!("{{\"count\":{}", padded.len())),
        "{}",
        batch.body
    );

    for iri in &iris {
        let single = client
            .get(&format!("/describe/{}", percent_encode(iri)))
            .unwrap();
        assert_eq!(
            single.header("x-remi-cache"),
            Some("hit"),
            "batch must prime {iri}"
        );
        assert!(
            batch.body.contains(&single.body),
            "batch body lacks the GET body for {iri}"
        );
    }

    // Unknown entities inside a batch degrade to an embedded error, not a
    // failed batch.
    let partial = client
        .post("/describe", "{\"entities\":[\"e:NoSuchEntity\"]}")
        .unwrap();
    assert_eq!(partial.status, 200);
    assert!(
        partial.body.contains("entity not found"),
        "{}",
        partial.body
    );
    server.shutdown();
}

/// `POST /query` answers exactly the library rendering, cold and cached,
/// on both backends — and the `/v1` spelling shares the cache entry.
#[test]
fn query_endpoint_is_cached_and_byte_identical_to_library_output() {
    let synth = world();
    let kb = synth.kb.clone();
    // A predicate that actually holds facts, so the join has rows.
    let pred = kb
        .pred_ids()
        .filter(|&p| !kb.is_inverse(p))
        .max_by_key(|&p| kb.index(p).num_facts())
        .map(|p| kb.pred_iri(p).to_string())
        .expect("fixture has predicates");
    let patterns = [["?s".to_string(), pred.clone(), "?o".to_string()]];
    let payload = format!(
        "{{\"patterns\":[{{\"s\":\"?s\",\"p\":{},\"o\":\"?o\"}}],\"limit\":5}}",
        remi_serve::json::escape(&pred)
    );

    let mut bodies = Vec::new();
    for backend in [Backend::Csr, Backend::Succinct] {
        let kb = kb.clone().with_backend(backend);
        let mut server = boot(
            kb.clone(),
            ServeConfig {
                backend: Some(backend),
                ..ServeConfig::default()
            },
        );
        let mut client = Client::connect(server.addr()).unwrap();

        let cold = client.post("/query", &payload).unwrap();
        assert_eq!(cold.status, 200, "{}", cold.body);
        assert_eq!(cold.header("x-remi-cache"), Some("miss"));
        let direct = query_body(&kb, &patterns, 5, None).unwrap();
        assert_eq!(cold.body, direct, "query on {backend}");
        assert!(cold.body.contains("\"truncated\":true"), "{}", cold.body);

        let warm = client.post("/query", &payload).unwrap();
        assert_eq!(warm.header("x-remi-cache"), Some("hit"));
        assert_eq!(warm.body, cold.body, "cache changed bytes");

        // The canonical /v1 path routes to the same handler and the same
        // cache entry (the key is path-independent).
        let v1 = client.post("/v1/query", &payload).unwrap();
        assert_eq!(v1.header("x-remi-cache"), Some("hit"));
        assert_eq!(v1.body, cold.body, "/v1/query diverged");

        bodies.push(cold.body);
        server.shutdown();
    }
    assert_eq!(bodies[0], bodies[1], "backends disagree on /query");
}

/// Every route answers under its `/v1/...` spelling with the same bytes
/// as the legacy unprefixed alias.
#[test]
fn v1_prefix_aliases_every_route() {
    let synth = world();
    let iri = &target_iris(&synth)[0];
    let mut server = boot(synth.kb.clone(), ServeConfig::default());
    let mut client = Client::connect(server.addr()).unwrap();

    for path in [
        "/healthz".to_string(),
        format!("/describe/{}", percent_encode(iri)),
        format!("/summarize/{}?k=3", percent_encode(iri)),
    ] {
        let legacy = client.get(&path).unwrap();
        let versioned = client.get(&format!("/v1{path}")).unwrap();
        assert_eq!(legacy.status, 200, "{path}: {}", legacy.body);
        assert_eq!(versioned.status, 200, "/v1{path}: {}", versioned.body);
        assert_eq!(legacy.body, versioned.body, "alias diverged for {path}");
    }
    // /v1 alone is not a route, and a fake version prefix is not stripped.
    assert_eq!(client.get("/v1").unwrap().status, 404);
    assert_eq!(client.get("/v2/healthz").unwrap().status, 404);
    server.shutdown();
}

/// Protocol and routing errors map to the documented statuses.
#[test]
fn error_statuses_are_mapped() {
    let synth = world();
    let mut server = boot(synth.kb.clone(), ServeConfig::default());
    let addr = server.addr();

    let mut c = Client::connect(addr).unwrap();
    assert_eq!(c.get("/no/such/route").unwrap().status, 404);
    assert_eq!(c.get("/describe/e:NoSuchEntity").unwrap().status, 404);
    assert_eq!(c.get("/describe/e:x?k=zero").unwrap().status, 400);
    assert_eq!(c.get("/describe/e:x?backend=flat").unwrap().status, 400);
    assert_eq!(c.post("/healthz", "{}").unwrap().status, 405);
    assert_eq!(c.get("/describe").unwrap().status, 405);
    assert_eq!(c.post("/describe", "not json").unwrap().status, 400);
    assert_eq!(
        c.post("/describe", "{\"entities\":[]}").unwrap().status,
        400
    );

    // 405s carry an Allow header derived from the route table.
    let wrong = c.post("/healthz", "{}").unwrap();
    assert_eq!(wrong.header("allow"), Some("GET"), "{}", wrong.body);
    let wrong = c.get("/describe").unwrap();
    assert_eq!(wrong.header("allow"), Some("POST"), "{}", wrong.body);

    // Parameter failures use the {"error": …, "param": …} envelope.
    let bad = c.get("/describe/e:x?k=zero").unwrap();
    assert!(bad.body.contains("\"param\":\"k\""), "{}", bad.body);
    let bad = c.get("/describe/e:x?backend=flat").unwrap();
    assert!(bad.body.contains("\"param\":\"backend\""), "{}", bad.body);

    // /query error mapping: malformed JSON, bad patterns, bad limit.
    assert_eq!(c.get("/query").unwrap().status, 405);
    assert_eq!(c.post("/query", "not json").unwrap().status, 400);
    let bad = c.post("/query", "{\"patterns\":[]}").unwrap();
    assert_eq!(bad.status, 400);
    assert!(bad.body.contains("\"param\":\"patterns\""), "{}", bad.body);
    let bad = c
        .post(
            "/query",
            "{\"patterns\":[{\"s\":\"?s\",\"p\":\"p:x\",\"o\":\"?o\"}],\"limit\":0}",
        )
        .unwrap();
    assert_eq!(bad.status, 400);
    assert!(bad.body.contains("\"param\":\"limit\""), "{}", bad.body);

    // Malformed request line: 400 and the connection closes.
    let mut raw = Client::connect(addr).unwrap();
    raw.send_raw(b"BANANAS\r\n\r\n").unwrap();
    let resp = raw.read_response().unwrap();
    assert_eq!(resp.status, 400);

    // Oversized body: 413.
    let mut big = Client::connect(addr).unwrap();
    big.send_raw(
        format!(
            "POST /describe HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            remi_serve::http::MAX_BODY_BYTES + 1
        )
        .as_bytes(),
    )
    .unwrap();
    assert_eq!(big.read_response().unwrap().status, 413);

    // Keep-alive: one connection, several requests, then explicit close.
    let mut ka = Client::connect(addr).unwrap();
    for _ in 0..3 {
        assert_eq!(ka.get("/healthz").unwrap().status, 200);
    }
    server.shutdown();
}

/// Admission control: connections beyond the cap (4 × `max_inflight`,
/// min 8) get `503` while live keep-alive connections hold every slot.
#[test]
fn load_shedding_answers_503_beyond_the_watermark() {
    let synth = world();
    let mut server = boot(
        synth.kb.clone(),
        ServeConfig {
            max_inflight: 1, // connection cap floors at 8
            ..ServeConfig::default()
        },
    );
    let addr = server.addr();

    // Fill all eight connection slots with live keep-alive connections
    // (each response proves its connection was accepted, not queued —
    // idle ones park, so they coexist even on a 1-worker pool).
    let mut holders: Vec<Client> = Vec::new();
    for i in 0..8 {
        let mut c = Client::connect(addr).unwrap();
        assert_eq!(c.get("/healthz").unwrap().status, 200, "holder {i}");
        holders.push(c);
    }

    // The ninth connection is shed at accept time.
    let mut shed = Client::connect(addr).unwrap();
    let resp = shed.get("/healthz").unwrap();
    assert_eq!(resp.status, 503, "{}", resp.body);
    assert_eq!(resp.header("retry-after"), Some("1"));

    // Releasing the slots restores service (the sweep notices the closed
    // connections within a poll tick; retry on fresh connections).
    drop(shed);
    drop(holders);
    let ok = (0..50).any(|_| {
        std::thread::sleep(std::time::Duration::from_millis(20));
        matches!(
            Client::connect(addr).and_then(|mut c| c.get("/healthz")),
            Ok(r) if r.status == 200
        )
    });
    assert!(ok, "service did not recover after shedding");
    server.shutdown();
}

/// Graceful shutdown: in-flight keep-alive connections finish their
/// current request, new connections stop being served, and `shutdown`
/// returns once everything drained.
#[test]
fn graceful_shutdown_drains_inflight_connections() {
    let synth = world();
    let mut server = boot(synth.kb.clone(), ServeConfig::default());
    let addr = server.addr();

    let mut client = Client::connect(addr).unwrap();
    assert_eq!(client.get("/healthz").unwrap().status, 200);

    server.shutdown();

    // The listener is gone: either the connect fails or the first request
    // on the fresh connection does.
    let still_up = match Client::connect(addr) {
        Ok(mut c) => c.get("/healthz").is_ok(),
        Err(_) => false,
    };
    assert!(!still_up, "server still answering after shutdown");
}

/// `GET /metrics` renders a Prometheus text exposition covering the
/// serve, pool, and kb layers — and traffic served before the scrape is
/// visible in its route histogram.
#[test]
fn metrics_endpoint_exposes_prometheus_text() {
    let synth = world();
    let iri = &target_iris(&synth)[0];
    let mut server = boot(synth.kb.clone(), ServeConfig::default());
    let mut client = Client::connect(server.addr()).unwrap();

    let ok = client
        .get(&format!("/describe/{}", percent_encode(iri)))
        .unwrap();
    assert_eq!(ok.status, 200, "{}", ok.body);

    let resp = client.get("/v1/metrics").unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(
        resp.header("content-type"),
        Some("text/plain; version=0.0.4")
    );
    let body = &resp.body;
    for needle in [
        "# TYPE remi_http_request_duration_ns histogram",
        "remi_http_request_duration_ns_bucket{route=\"describe\",status=\"200\",le=\"",
        "remi_http_request_duration_ns_count{route=\"describe\",status=\"200\"} 1",
        "# TYPE remi_http_requests_total counter",
        "remi_http_phase_duration_ns_count{phase=\"mine\"}",
        "remi_pool_queue_depth",
        "remi_pool_steals_total",
        "remi_kb_publish_duration_ns_count",
        "remi_kb_epoch 0",
        "remi_cache_misses_total 1",
        "remi_connections_total 1",
        "remi_uptime_seconds",
    ] {
        assert!(body.contains(needle), "missing {needle:?} in:\n{body}");
    }
    // Cumulative histogram buckets end in an +Inf edge equal to _count.
    assert!(
        body.contains(
            "remi_http_request_duration_ns_bucket{route=\"describe\",status=\"200\",le=\"+Inf\"} 1"
        ),
        "{body}"
    );
    server.shutdown();
}

/// `?trace=1` embeds the request's own phase timings in the JSON body;
/// without it the body stays clean, and the cache entry is shared (the
/// echo is applied per request, after the cache).
#[test]
fn trace_param_embeds_phase_timings() {
    let synth = world();
    let iri = &target_iris(&synth)[0];
    let mut server = boot(synth.kb.clone(), ServeConfig::default());
    let mut client = Client::connect(server.addr()).unwrap();
    let path = format!("/describe/{}", percent_encode(iri));

    let plain = client.get(&path).unwrap();
    assert_eq!(plain.status, 200, "{}", plain.body);
    assert!(!plain.body.contains("\"trace\""), "{}", plain.body);

    let traced = client.get(&format!("{path}?trace=1")).unwrap();
    assert_eq!(traced.status, 200, "{}", traced.body);
    assert_eq!(
        traced.header("x-remi-cache"),
        Some("hit"),
        "trace=1 must not fork the cache key"
    );
    assert!(
        traced.body.contains("\"trace\":{\"route\":\"describe\""),
        "{}",
        traced.body
    );
    assert!(
        traced.body.contains("\"phases\":[{\"phase\":\"parse\""),
        "{}",
        traced.body
    );
    // The traced body is the plain body plus the trailing trace object.
    let prefix = &plain.body[..plain.body.len() - 1];
    assert!(traced.body.starts_with(prefix), "{}", traced.body);
    server.shutdown();
}

/// With `--slow-request-ms 0` every request crosses the threshold: the
/// structured slow log fires and `remi_http_slow_requests_total` counts
/// it.
#[test]
fn slow_request_threshold_counts_and_logs() {
    let synth = world();
    let mut server = boot(
        synth.kb.clone(),
        ServeConfig {
            slow_request_ms: Some(0),
            ..ServeConfig::default()
        },
    );
    let mut client = Client::connect(server.addr()).unwrap();
    assert_eq!(client.get("/healthz").unwrap().status, 200);
    assert_eq!(client.get("/healthz").unwrap().status, 200);

    let metrics = client.get("/metrics").unwrap().body;
    let count: u64 = metrics
        .lines()
        .find_map(|l| l.strip_prefix("remi_http_slow_requests_total "))
        .and_then(|v| v.parse().ok())
        .expect("slow-request counter exposed");
    assert!(count >= 2, "expected ≥2 slow requests, saw {count}");
    server.shutdown();
}

/// `?explain=1` on `POST /query` carries the request's own plan trace,
/// bypasses the cache in both directions, and renders the same explain
/// object on both backends; plain requests stay explain-free.
#[test]
fn explain_param_embeds_plan_trace_and_bypasses_cache() {
    let synth = world();
    let kb = synth.kb.clone();
    let pred = kb
        .pred_ids()
        .filter(|&p| !kb.is_inverse(p))
        .max_by_key(|&p| kb.index(p).num_facts())
        .map(|p| kb.pred_iri(p).to_string())
        .expect("fixture has predicates");
    let payload = format!(
        "{{\"patterns\":[{{\"s\":\"?s\",\"p\":{},\"o\":\"?o\"}}],\"limit\":5}}",
        remi_serve::json::escape(&pred)
    );

    let mut explains = Vec::new();
    for backend in [Backend::Csr, Backend::Succinct] {
        let mut server = boot(
            kb.clone().with_backend(backend),
            ServeConfig {
                backend: Some(backend),
                ..ServeConfig::default()
            },
        );
        let mut client = Client::connect(server.addr()).unwrap();

        let plain = client.post("/query", &payload).unwrap();
        assert_eq!(plain.status, 200, "{}", plain.body);
        assert_eq!(plain.header("x-remi-cache"), Some("miss"));
        assert!(!plain.body.contains("\"explain\""), "{}", plain.body);

        // Explain skips the cache probe even though the entry exists…
        let explained = client.post("/query?explain=1", &payload).unwrap();
        assert_eq!(explained.status, 200, "{}", explained.body);
        assert_eq!(explained.header("x-remi-cache"), Some("bypass"));
        // …and the body is the plain body plus the trailing explain
        // object: pattern order with estimated-vs-actual cardinalities
        // and the join-path choice.
        let prefix = &plain.body[..plain.body.len() - 1];
        assert!(explained.body.starts_with(prefix), "{}", explained.body);
        assert!(
            explained.body.contains("\"explain\":{\"path\":"),
            "{}",
            explained.body
        );
        assert!(
            explained
                .body
                .contains("\"patterns\":[{\"pattern\":0,\"estimated\":"),
            "{}",
            explained.body
        );

        // The cache entry was neither read nor replaced: the next plain
        // request hits and its body is still explain-free.
        let warm = client.post("/query", &payload).unwrap();
        assert_eq!(warm.header("x-remi-cache"), Some("hit"));
        assert_eq!(warm.body, plain.body, "explain polluted the cache");

        // The /v1 spelling renders the identical explain body.
        let v1 = client.post("/v1/query?explain=1", &payload).unwrap();
        assert_eq!(v1.body, explained.body, "/v1 explain diverged");

        explains.push(explained.body);
        server.shutdown();
    }
    assert_eq!(
        explains[0], explains[1],
        "explain traces must be backend-independent"
    );
}

/// `GET /v1/debug/events` exposes the flight recorder: planner events
/// from query misses, well-formed JSON with monotone sequence numbers,
/// channel/severity/since filters, and a response bounded by the
/// configured ring capacity.
#[test]
fn debug_events_endpoint_exposes_bounded_recorder() {
    let synth = world();
    let kb = synth.kb.clone();
    let pred = kb
        .pred_ids()
        .filter(|&p| !kb.is_inverse(p))
        .max_by_key(|&p| kb.index(p).num_facts())
        .map(|p| kb.pred_iri(p).to_string())
        .expect("fixture has predicates");
    let capacity = 16;
    let mut server = boot(
        kb,
        ServeConfig {
            event_capacity: capacity,
            ..ServeConfig::default()
        },
    );
    let mut client = Client::connect(server.addr()).unwrap();

    // Distinct limits defeat the cache, so every request runs the
    // planner and emits events — far more than the ring holds.
    for limit in 1..=(capacity + 8) {
        let payload = format!(
            "{{\"patterns\":[{{\"s\":\"?s\",\"p\":{},\"o\":\"?o\"}}],\"limit\":{limit}}}",
            remi_serve::json::escape(&pred)
        );
        assert_eq!(client.post("/query", &payload).unwrap().status, 200);
    }

    let all = client.get("/v1/debug/events").unwrap();
    assert_eq!(all.status, 200, "{}", all.body);
    assert!(all.body.contains("\"head\":"), "{}", all.body);
    assert!(
        all.body.contains(&format!("\"capacity\":{capacity}")),
        "{}",
        all.body
    );
    assert!(
        all.body.contains("\"event\":\"query_plan\""),
        "{}",
        all.body
    );

    // The ring bound holds no matter how many events were emitted.
    let count: usize = all
        .body
        .split("\"count\":")
        .nth(1)
        .and_then(|rest| {
            rest.split(|ch: char| !ch.is_ascii_digit())
                .next()?
                .parse()
                .ok()
        })
        .expect("events response reports count");
    assert!(count <= capacity, "{count} events > capacity {capacity}");

    // Sequence numbers are strictly increasing in the rendered order.
    let seqs: Vec<u64> = all
        .body
        .split("\"seq\":")
        .skip(1)
        .filter_map(|rest| {
            rest.split(|ch: char| !ch.is_ascii_digit())
                .next()?
                .parse()
                .ok()
        })
        .collect();
    assert_eq!(seqs.len(), count);
    assert!(seqs.windows(2).all(|w| w[0] < w[1]), "{seqs:?}");

    // Channel and severity filters narrow the view.
    let query_only = client.get("/v1/debug/events?channel=query").unwrap();
    assert!(
        !query_only.body.contains("\"channel\":\"kb\""),
        "{}",
        query_only.body
    );
    let warn_up = client
        .get("/v1/debug/events?severity=warn&channel=query")
        .unwrap();
    assert!(
        !warn_up.body.contains("\"severity\":\"info\""),
        "{}",
        warn_up.body
    );
    // `since` re-reads only the tail.
    let last = *seqs.last().unwrap();
    let since = client
        .get(&format!("/v1/debug/events?since={last}"))
        .unwrap();
    assert!(
        since.body.contains(&format!("\"seq\":{last}")),
        "{}",
        since.body
    );

    // Bad filter values are param-tagged 400s.
    let bad = client.get("/v1/debug/events?channel=nope").unwrap();
    assert_eq!(bad.status, 400);
    assert!(bad.body.contains("\"param\":\"channel\""), "{}", bad.body);
    server.shutdown();
}

/// Connection churn never underflows the open-connections gauge: after
/// clients come and go, `/stats` still reports a sane small number.
#[test]
fn connection_gauge_survives_churn() {
    let synth = world();
    let mut server = boot(synth.kb.clone(), ServeConfig::default());
    let addr = server.addr();

    for _ in 0..4 {
        let mut c = Client::connect(addr).unwrap();
        assert_eq!(c.get("/healthz").unwrap().status, 200);
        // Dropping c closes the socket; the server-side sweep decrements
        // the gauge (saturating — a double decrement must not wrap).
    }
    let mut c = Client::connect(addr).unwrap();
    let stats = c.get("/stats").unwrap();
    let open = stats
        .body
        .split("\"connections_open\":")
        .nth(1)
        .and_then(|rest| {
            rest.split(|ch: char| !ch.is_ascii_digit())
                .next()?
                .parse::<u64>()
                .ok()
        })
        .expect("stats reports connections_open");
    assert!(
        open <= 5,
        "gauge wrapped or leaked: {open} ({})",
        stats.body
    );
    server.shutdown();
}

/// `remi serve` (the CLI layer) wires flags through to a live server.
#[test]
fn cli_serve_round_trip() {
    let dir = std::env::temp_dir().join(format!(
        "remi_serve_cli_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let kb_path = dir.join("kb.rkb2");
    remi_cli::cmd_gen("dbpedia", 0.2, 5, &kb_path).unwrap();

    let opts = remi_cli::ServeOpts {
        addr: "127.0.0.1:0".to_string(),
        cache_entries: 64,
        ..Default::default()
    };
    let (mut handle, banner) = remi_cli::cmd_serve(&kb_path, &opts).unwrap();
    assert!(banner.contains("serving"), "{banner}");

    let mut client = Client::connect(handle.addr()).unwrap();
    let stats = client.get("/stats").unwrap();
    assert_eq!(stats.status, 200);
    // An .rkb2 file loads into the succinct backend natively.
    assert!(
        stats.body.contains("\"primary\":\"succinct\""),
        "{}",
        stats.body
    );
    let kb = remi_cli::load_kb(&kb_path, 0.01).unwrap();
    let iri = kb
        .entity_ids()
        .find(|&e| !kb.preds_of_subject(e).is_empty())
        .map(|e| kb.node_key(e).to_string())
        .expect("a describable entity");
    let resp = client
        .get(&format!("/describe/{}", percent_encode(&iri)))
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
