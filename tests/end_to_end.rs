//! End-to-end integration: generate a KB, mine referring expressions, and
//! verify the RE property — the bindings of every reported expression are
//! exactly the target set — across languages and thread counts.

use remi_core::eval::Evaluator;
use remi_core::{LanguageBias, Remi, RemiConfig, SearchStatus};
use remi_synth::{dbpedia_like, generate, sample_target_sets, wikidata_like, TargetSpec};

fn sorted_ids(targets: &[remi_kb::NodeId]) -> Vec<u32> {
    let mut v: Vec<u32> = targets.iter().map(|t| t.0).collect();
    v.sort_unstable();
    v.dedup();
    v
}

#[test]
fn every_reported_expression_is_a_genuine_re() {
    let synth = generate(&dbpedia_like(), 1.0, 101);
    let kb = &synth.kb;
    let remi = Remi::new(kb, RemiConfig::default());
    let sets = sample_target_sets(
        &synth,
        &["Person", "Settlement", "Album", "Film", "Organization"],
        &TargetSpec {
            count: 40,
            ..Default::default()
        },
        9,
    );
    let eval = Evaluator::new(kb, 4096);
    let mut solved = 0;
    for set in &sets {
        let outcome = remi.describe(&set.entities);
        if let Some((expr, cost)) = outcome.best {
            solved += 1;
            assert!(!cost.is_infinite());
            assert!(
                eval.is_referring_expression(&expr.parts, &sorted_ids(&set.entities)),
                "reported expression is not an RE for {:?}: {}",
                set.entities,
                expr.display(kb)
            );
        } else {
            assert_eq!(outcome.status, SearchStatus::NoSolution);
        }
    }
    assert!(solved > 5, "only {solved}/40 sets solved — KB too sparse?");
}

#[test]
fn language_bias_shapes_are_respected() {
    let synth = generate(&dbpedia_like(), 1.0, 103);
    let kb = &synth.kb;
    for language in [LanguageBias::Standard, LanguageBias::Remi] {
        let config = RemiConfig {
            enumeration: remi_core::EnumerationConfig {
                language,
                ..Default::default()
            },
            ..Default::default()
        };
        let remi = Remi::new(kb, config);
        for &entity in synth.members("Person").iter().take(10) {
            let (queue, _) = remi.ranked_common_expressions(&[entity]);
            for scored in &queue {
                assert!(scored.expr.num_atoms() <= 3, "Table 1 caps atoms at 3");
                assert!(scored.expr.num_extra_vars() <= 1, "at most one extra var");
                if language == LanguageBias::Standard {
                    assert!(scored.expr.is_standard(), "{:?}", scored.expr);
                }
            }
            // Queue must be sorted ascending by cost.
            for w in queue.windows(2) {
                assert!(w[0].cost <= w[1].cost);
            }
        }
    }
}

#[test]
fn standard_solutions_are_a_subset_of_extended_solutions() {
    let synth = generate(&dbpedia_like(), 1.0, 107);
    let kb = &synth.kb;
    let remi_std = Remi::new(kb, RemiConfig::standard_language());
    let remi_ext = Remi::new(kb, RemiConfig::default());
    let sets = sample_target_sets(
        &synth,
        &["Settlement", "Organization"],
        &TargetSpec {
            count: 30,
            ..Default::default()
        },
        11,
    );
    for set in &sets {
        let std_found = remi_std.describe(&set.entities).best.is_some();
        let ext_found = remi_ext.describe(&set.entities).best.is_some();
        if std_found {
            assert!(
                ext_found,
                "extended language must cover standard solutions for {:?}",
                set.entities
            );
        }
    }
}

#[test]
fn parallel_and_sequential_agree_on_existence_and_validity() {
    // Algorithms 2 and 3 are both *heuristic* minimisers: Alg. 2's side
    // pruning and Alg. 3's shared-incumbent backtracking explore slightly
    // different conjunction subsets, so the two may return different
    // (valid, near-minimal) REs. What the algorithms do guarantee — and
    // what we assert — is agreement on solution existence, genuine RE-ness
    // of every answer, and costs of the same order.
    let synth = generate(&dbpedia_like(), 1.0, 109);
    let kb = &synth.kb;
    let seq = Remi::new(kb, RemiConfig::default());
    let par = Remi::new(kb, RemiConfig::default().with_threads(8));
    let eval = Evaluator::new(kb, 4096);
    let sets = sample_target_sets(
        &synth,
        &["Person", "Settlement", "Film"],
        &TargetSpec {
            count: 30,
            ..Default::default()
        },
        13,
    );
    for set in &sets {
        let a = seq.describe(&set.entities);
        let b = par.describe(&set.entities);
        assert_eq!(
            a.best.is_some(),
            b.best.is_some(),
            "existence disagreement on {:?}",
            set.entities
        );
        if let (Some((ea, ca)), Some((eb, cb))) = (&a.best, &b.best) {
            let targets = sorted_ids(&set.entities);
            assert!(eval.is_referring_expression(&ea.parts, &targets));
            assert!(eval.is_referring_expression(&eb.parts, &targets));
            let (lo, hi) = (ca.value().min(cb.value()), ca.value().max(cb.value()));
            assert!(
                hi <= lo * 2.0 + 4.0,
                "costs diverge too far on {:?}: seq {ca:?} vs par {cb:?}",
                set.entities
            );
        }
    }
}

#[test]
fn wikidata_profile_mines_too() {
    let synth = generate(&wikidata_like(), 1.0, 113);
    let kb = &synth.kb;
    let remi = Remi::new(kb, RemiConfig::default());
    let sets = sample_target_sets(
        &synth,
        &["Company", "City", "Film", "Human"],
        &TargetSpec {
            count: 20,
            ..Default::default()
        },
        15,
    );
    let solved = sets
        .iter()
        .filter(|s| remi.describe(&s.entities).best.is_some())
        .count();
    assert!(solved > 3, "only {solved}/20 wikidata sets solved");
}

#[test]
fn timeouts_degrade_gracefully() {
    let synth = generate(&dbpedia_like(), 1.0, 127);
    let kb = &synth.kb;
    let remi = Remi::new(
        kb,
        RemiConfig::default().with_timeout(std::time::Duration::from_nanos(1)),
    );
    let person = synth.members("Person")[0];
    let outcome = remi.describe(&[person]);
    // With a zero-ish deadline we either time out or still complete the
    // trivial parts; both are legal, but a panic is not.
    match outcome.status {
        SearchStatus::TimedOut | SearchStatus::Completed | SearchStatus::NoSolution => {}
    }
}
