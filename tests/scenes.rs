//! Scene-KB integration: the historical NLG workload (§5). Full brevity
//! and REMI must agree on describability, and REMI's answers must remain
//! genuine REs on this very different data shape.

use remi_core::eval::Evaluator;
use remi_core::fullbrevity::full_brevity;
use remi_core::{EnumerationConfig, LanguageBias, Remi, RemiConfig};
use remi_synth::scenes::generate_scene;

fn scene_remi_config() -> RemiConfig {
    RemiConfig {
        enumeration: EnumerationConfig {
            // Scenes have a handful of attribute values that all land in
            // the "top 5%" of such a tiny KB; disable the pruning as the
            // historical algorithms effectively do.
            prominent_cutoff: 0.0,
            language: LanguageBias::Standard,
            ..Default::default()
        },
        ..Default::default()
    }
}

#[test]
fn remi_describes_scene_objects() {
    let scene = generate_scene(25, 17);
    let kb = &scene.kb;
    let remi = Remi::new(kb, scene_remi_config());
    let eval = Evaluator::new(kb, 512);
    let mut solved = 0;
    for &obj in &scene.objects {
        let outcome = remi.describe(&[obj]);
        if let Some((expr, _)) = outcome.best {
            solved += 1;
            assert!(eval.is_referring_expression(&expr.parts, &[obj.0]));
        }
    }
    // Random scenes leave some objects indistinguishable; most should be
    // describable via type+color+size (5×6×3 = 90 combinations, 25 objects).
    assert!(solved >= 15, "only {solved}/25 scene objects described");
}

#[test]
fn full_brevity_and_remi_agree_on_existence() {
    // Under the standard language on attribute-only data, REMI (which
    // searches the same conjunction space, ordered differently) and full
    // brevity must agree about which objects are describable.
    let scene = generate_scene(30, 23);
    let kb = &scene.kb;
    let remi = Remi::new(kb, scene_remi_config());
    for &obj in &scene.objects {
        let fb = full_brevity(kb, &[obj], 4);
        let rm = remi.describe(&[obj]);
        assert_eq!(
            fb.best.is_some(),
            rm.best.is_some(),
            "existence disagreement on {obj:?}"
        );
    }
}

#[test]
fn remi_never_returns_longer_than_full_brevity_needs_plus_slack() {
    // Full brevity returns the shortest RE by atom count; REMI minimises
    // bits. REMI may use more atoms if they are more prominent, but not
    // absurdly many on attribute data.
    let scene = generate_scene(30, 29);
    let kb = &scene.kb;
    let remi = Remi::new(kb, scene_remi_config());
    for &obj in &scene.objects {
        let (Some(fb), Some((rm, _))) =
            (full_brevity(kb, &[obj], 4).best, remi.describe(&[obj]).best)
        else {
            continue;
        };
        assert!(
            rm.num_atoms() <= fb.num_atoms() + 3,
            "REMI used {} atoms where {} suffice",
            rm.num_atoms(),
            fb.num_atoms()
        );
    }
}

#[test]
fn extended_language_helps_on_relational_scenes() {
    // The `nextTo` relation gives path expressions ("the cube next to the
    // red sphere") that the standard language cannot use. The extended
    // language must describe at least as many objects.
    let scene = generate_scene(20, 31);
    let kb = &scene.kb;
    let std_remi = Remi::new(kb, scene_remi_config());
    let ext_remi = Remi::new(
        kb,
        RemiConfig {
            enumeration: EnumerationConfig {
                prominent_cutoff: 0.0,
                language: LanguageBias::Remi,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let std_solved = scene
        .objects
        .iter()
        .filter(|&&o| std_remi.describe(&[o]).best.is_some())
        .count();
    let ext_solved = scene
        .objects
        .iter()
        .filter(|&&o| ext_remi.describe(&[o]).best.is_some())
        .count();
    assert!(ext_solved >= std_solved, "{ext_solved} < {std_solved}");
}
