//! Differential tests across storage backends: the CSR and succinct
//! layouts must be observationally identical end-to-end — same binding
//! primitives, same mined expressions, same CLI output — with the
//! succinct store well under the CSR footprint.

use proptest::prelude::*;
use remi_cli::{cmd_convert, cmd_describe, cmd_gen, DescribeOpts};
use remi_core::{Remi, RemiConfig};
use remi_kb::{Backend, KbBuilder, KnowledgeBase, NodeId};

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "remi_backends_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Mines the best RE for the given class representatives on one backend.
fn mine(kb: &KnowledgeBase, targets: &[NodeId]) -> Option<(String, String)> {
    let remi = Remi::new(kb, RemiConfig::default());
    let outcome = remi.describe(targets);
    outcome
        .best
        .map(|(expr, cost)| (expr.display(kb).to_string(), cost.to_string()))
}

/// On the fig1/synthetic KBs the succinct backend answers `remi mine`
/// identically to CSR while holding ≤ 60% of its bytes.
#[test]
fn mining_is_identical_and_smaller_on_synth_kb() {
    let synth = remi_synth::fixtures::dbpedia(0.5, 77);
    let csr = synth.kb.clone();
    assert_eq!(csr.backend(), Backend::Csr);
    let succinct = csr.clone().with_backend(Backend::Succinct);

    let csr_bytes = csr.store_memory().total();
    let succinct_bytes = succinct.store_memory().total();
    assert!(
        succinct_bytes * 10 <= csr_bytes * 6,
        "succinct {succinct_bytes} B must be <= 60% of CSR {csr_bytes} B"
    );

    let mut mined = 0usize;
    for class in ["Person", "Settlement", "Film"] {
        for chunk in synth.members(class).chunks(2).take(6) {
            let a = mine(&csr, chunk);
            let b = mine(&succinct, chunk);
            assert_eq!(a, b, "backends disagree on {class} targets {chunk:?}");
            mined += usize::from(a.is_some());
        }
    }
    assert!(mined > 0, "no target set was solvable — fixture too sparse");
}

/// The CLI end of the same guarantee: `remi describe --backend {csr,
/// succinct}` prints identical expressions on the same KB file (timings
/// and the memory footer legitimately differ).
#[test]
fn cli_describe_output_is_backend_independent() {
    let dir = tmpdir("cli");
    let kb_path = dir.join("world.rkb");
    cmd_gen("dbpedia", 0.3, 11, &kb_path).unwrap();

    let semantic_lines = |backend: Backend| -> Vec<String> {
        let opts = DescribeOpts {
            backend: Some(backend),
            ..Default::default()
        };
        let out = cmd_describe(&kb_path, &["e:Settlement_1".to_string()], &opts).unwrap();
        out.lines()
            .filter(|l| {
                // Expression, verbalisation, and complexity must match
                // byte-for-byte; the stats line carries wall-clock times
                // and the memory line names the backend.
                l.starts_with("expression:")
                    || l.starts_with("verbalised:")
                    || l.starts_with("complexity:")
                    || l.starts_with("no referring expression")
            })
            .map(String::from)
            .collect()
    };
    let csr = semantic_lines(Backend::Csr);
    let succinct = semantic_lines(Backend::Succinct);
    assert!(!csr.is_empty(), "describe produced no semantic output");
    assert_eq!(csr, succinct);
    std::fs::remove_dir_all(&dir).ok();
}

/// `remi convert` round-trips through RKB2 losslessly: rkb → rkb2 → rkb
/// preserves every triple, and the rkb2 file loads on the succinct
/// backend natively.
#[test]
fn convert_roundtrips_through_rkb2() {
    let dir = tmpdir("convert");
    let v1 = dir.join("kb.rkb");
    let v2 = dir.join("kb.rkb2");
    let back = dir.join("kb_back.rkb");
    cmd_gen("wikidata", 0.2, 5, &v1).unwrap();
    cmd_convert(&v1, &v2, None).unwrap();
    cmd_convert(&v2, &back, None).unwrap();

    let kb1 = remi_kb::binfmt::load(&v1, 0.0).unwrap();
    let kb2 = remi_kb::binfmt::load(&v2, 0.0).unwrap();
    let kb3 = remi_kb::binfmt::load(&back, 0.0).unwrap();
    assert_eq!(kb1.backend(), Backend::Csr);
    assert_eq!(kb2.backend(), Backend::Succinct);
    assert_eq!(kb3.backend(), Backend::Csr);
    assert_eq!(kb1.num_triples(), kb2.num_triples());
    assert_eq!(kb1.num_triples(), kb3.num_triples());
    for t in kb1.iter_triples() {
        let s = kb2.node_id_by_iri(kb1.node_key(t.s)).unwrap();
        let p = kb2.pred_id(kb1.pred_iri(t.p)).unwrap();
        let o = kb2.node_id_by_iri(kb1.node_key(t.o)).unwrap();
        assert!(kb2.contains(s, p, o));
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Front-coded dictionaries survive adversarial unicode keys through the
/// RKB2 section format (multi-byte boundaries, combining marks, keys that
/// are prefixes of each other).
#[test]
fn rkb2_front_coding_handles_adversarial_unicode() {
    let mut b = KbBuilder::new();
    let keys = [
        "e:caf",
        "e:café",
        "e:café\u{301}s",
        "e:caf\u{fe0f}",
        "e:日本",
        "e:日本語",
        "e:🦀",
        "e:🦀🦀",
    ];
    for (i, k) in keys.iter().enumerate() {
        b.add_iri(k, "p:r", keys[(i + 1) % keys.len()]);
    }
    let kb = b.build().unwrap();
    let bytes = remi_kb::binfmt::write_bytes_v2(&kb);
    let kb2 = remi_kb::binfmt::read_bytes(&bytes, 0.0).unwrap();
    assert_eq!(kb.num_nodes(), kb2.num_nodes());
    for k in keys {
        assert!(kb2.node_id_by_iri(k).is_some(), "lost key {k:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary small KBs: both backends and both binary formats agree
    /// on every mined expression for every singleton target.
    #[test]
    fn prop_backends_and_formats_mine_identically(
        facts in proptest::collection::vec((0u8..12, 0u8..4, 0u8..12), 3..40),
    ) {
        let mut b = KbBuilder::new();
        for &(s, p, o) in &facts {
            b.add_iri(&format!("e:n{s}"), &format!("p:r{p}"), &format!("e:n{o}"));
        }
        let csr = b.build().unwrap();
        let succinct = csr.clone().with_backend(Backend::Succinct);
        // And once more through the RKB2 wire format.
        let rkb2 = remi_kb::binfmt::write_bytes_v2(&csr);
        let reloaded = remi_kb::binfmt::read_bytes(&rkb2, 0.0).unwrap();
        prop_assert_eq!(reloaded.backend(), Backend::Succinct);

        for &(s, _, _) in facts.iter().take(6) {
            let target = csr.node_id_by_iri(&format!("e:n{s}")).unwrap();
            let a = mine(&csr, &[target]);
            prop_assert_eq!(&a, &mine(&succinct, &[target]));
            // Dictionary ids are identical across the wire, so displayed
            // expressions match byte-for-byte too.
            let t2 = reloaded.node_id_by_iri(&format!("e:n{s}")).unwrap();
            prop_assert_eq!(&a, &mine(&reloaded, &[t2]));
        }
    }

    /// Front-coding + varint roundtrip on arbitrary unicode keys through
    /// both binary formats.
    #[test]
    fn prop_unicode_keys_roundtrip_both_formats(
        raw in proptest::collection::vec(".{1,24}", 2..14),
    ) {
        let mut keys: Vec<String> = raw.into_iter().map(|k| format!("e:{k}")).collect();
        keys.sort();
        keys.dedup();
        let mut b = KbBuilder::new();
        for (i, k) in keys.iter().enumerate() {
            b.add_iri(k, "p:r", &keys[(i + 1) % keys.len()]);
        }
        let kb = b.build().unwrap();
        for bytes in [
            remi_kb::binfmt::write_bytes(&kb),
            remi_kb::binfmt::write_bytes_v2(&kb),
        ] {
            let kb2 = remi_kb::binfmt::read_bytes(&bytes, 0.0).unwrap();
            prop_assert_eq!(kb.num_nodes(), kb2.num_nodes());
            for k in &keys {
                prop_assert!(kb2.node_id_by_iri(k).is_some(), "lost key {:?}", k);
            }
        }
    }
}
