//! Differential tests for the triple-pattern query engine: `solve()`
//! must answer every pattern shape identically on the CSR, succinct, and
//! layered (delta-overlay) stores — before and after compaction — and
//! `solve_bgp` must agree with a naive nested-loop reference join.
//!
//! Dictionaries are id-identical across all the stores by construction
//! (same intern order), so ids and whole solution rows compare directly.

use proptest::prelude::*;
use remi_kb::term::Term;
use remi_kb::{
    solve_bgp, solve_bgp_traced, Backend, KbBuilder, KnowledgeBase, LiveKb, Slot, SolutionIter,
    TriplePattern,
};

type Fact = (u8, u8, u8);

fn iri3(f: Fact) -> (Term, String, Term) {
    (
        Term::iri(format!("e:n{}", f.0)),
        format!("p:r{}", f.1),
        Term::iri(format!("e:n{}", f.2)),
    )
}

fn build_kb(facts: &[Fact]) -> KnowledgeBase {
    let mut b = KbBuilder::new();
    for &(s, p, o) in facts {
        b.add_iri(&format!("e:n{s}"), &format!("p:r{p}"), &format!("e:n{o}"));
    }
    b.build().expect("non-empty")
}

/// The four stores every query must agree on: CSR, succinct, and the
/// layered store both before and after compaction (base = `facts[..cut]`,
/// delta = the rest).
fn stores(facts: &[Fact], cut: usize) -> (KnowledgeBase, Vec<(&'static str, KnowledgeBase)>) {
    let csr = build_kb(facts);
    let succinct = csr.clone().with_backend(Backend::Succinct);
    let live = LiveKb::new(build_kb(&facts[..cut]));
    if cut < facts.len() {
        live.append(facts[cut..].iter().map(|&f| iri3(f)));
    }
    let layered = live.snapshot();
    live.compact();
    let compacted = live.snapshot();
    (
        csr,
        vec![
            ("succinct", succinct),
            ("layered", (*layered.kb).clone()),
            ("compacted", (*compacted.kb).clone()),
        ],
    )
}

fn solutions(kb: &KnowledgeBase, pat: TriplePattern) -> Vec<(u32, u32, u32)> {
    SolutionIter::new(kb.store(), pat)
        .map(|t| (t.s.0, t.p.0, t.o.0))
        .collect()
}

/// All 8 bound/unbound shapes anchored on `facts[0]`, plus out-of-range
/// bound ids and repeated-variable patterns.
fn pattern_suite(kb: &KnowledgeBase, facts: &[Fact]) -> Vec<TriplePattern> {
    let (s, p, o) = facts[0];
    let s = kb.node_id_by_iri(&format!("e:n{s}")).unwrap().0;
    let p = kb.pred_id(&format!("p:r{p}")).unwrap().0;
    let o = kb.node_id_by_iri(&format!("e:n{o}")).unwrap().0;
    let slot = |bound: u32, var: u8, is_bound: bool| {
        if is_bound {
            Slot::Bound(bound)
        } else {
            Slot::Var(var)
        }
    };
    let mut pats: Vec<TriplePattern> = (0u8..8)
        .map(|mask| {
            TriplePattern::new(
                slot(s, 0, mask & 4 != 0),
                slot(p, 1, mask & 2 != 0),
                slot(o, 2, mask & 1 != 0),
            )
        })
        .collect();
    pats.push(TriplePattern::new(
        Slot::Bound(9999),
        Slot::Var(0),
        Slot::Var(1),
    ));
    pats.push(TriplePattern::new(
        Slot::Var(0),
        Slot::Bound(9999),
        Slot::Var(1),
    ));
    pats.push(TriplePattern::new(Slot::Var(0), Slot::Var(1), Slot::Var(0)));
    pats.push(TriplePattern::new(Slot::Var(0), Slot::Var(0), Slot::Var(0)));
    pats
}

/// Reference BGP evaluation: nested loops over the raw triple list in
/// the given pattern order, no planning, no merge paths.
fn naive_bgp(
    triples: &[(u32, u32, u32)],
    patterns: &[TriplePattern],
    vars: &[u8],
) -> Vec<Vec<u32>> {
    fn bind(slot: Slot, val: u32, env: &mut Vec<(u8, u32)>) -> bool {
        match slot {
            Slot::Bound(b) => b == val,
            Slot::Var(v) => match env.iter().find(|&&(id, _)| id == v) {
                Some(&(_, bound)) => bound == val,
                None => {
                    env.push((v, val));
                    true
                }
            },
        }
    }
    fn go(
        triples: &[(u32, u32, u32)],
        patterns: &[TriplePattern],
        env: Vec<(u8, u32)>,
        out: &mut Vec<Vec<(u8, u32)>>,
    ) {
        let Some(&pat) = patterns.first() else {
            out.push(env);
            return;
        };
        for &(s, p, o) in triples {
            let mut e = env.clone();
            if bind(pat.s, s, &mut e) && bind(pat.p, p, &mut e) && bind(pat.o, o, &mut e) {
                go(triples, &patterns[1..], e, out);
            }
        }
    }
    let mut envs = Vec::new();
    go(triples, patterns, Vec::new(), &mut envs);
    envs.iter()
        .map(|env| {
            vars.iter()
                .map(|&v| env.iter().find(|&&(id, _)| id == v).unwrap().1)
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every single-pattern shape answers identically — same rows, same
    /// order — on CSR, succinct, layered, and compacted-layered stores.
    #[test]
    fn prop_solve_is_backend_independent(
        facts in proptest::collection::vec((0u8..12, 0u8..4, 0u8..12), 3..40),
        split in 0usize..40,
    ) {
        let cut = 1 + split % facts.len();
        let (csr, others) = stores(&facts, cut.min(facts.len()));
        for pat in pattern_suite(&csr, &facts) {
            let want = solutions(&csr, pat);
            for (name, kb) in &others {
                let got = solutions(kb, pat);
                prop_assert!(
                    want == got,
                    "{} disagrees with csr on {:?}: {:?} vs {:?}",
                    name,
                    pat,
                    got,
                    want
                );
            }
        }
    }

    /// Chain joins through `solve_bgp` match the naive reference (as row
    /// sets) and are bit-identical across all stores (as row sequences),
    /// including under truncation.
    #[test]
    fn prop_bgp_matches_naive_reference(
        facts in proptest::collection::vec((0u8..12, 0u8..4, 0u8..12), 3..40),
        picks in proptest::collection::vec(0usize..40, 2..4),
        split in 0usize..40,
    ) {
        let cut = 1 + split % facts.len();
        let (csr, others) = stores(&facts, cut.min(facts.len()));
        // Chain patterns ?v0 —p0→ ?v1 —p1→ ?v2 … joined on the shared
        // variables, predicates drawn from the fact list.
        let patterns: Vec<TriplePattern> = picks
            .iter()
            .enumerate()
            .map(|(i, &pick)| {
                let (_, p, _) = facts[pick % facts.len()];
                let p = csr.pred_id(&format!("p:r{p}")).unwrap().0;
                TriplePattern::new(Slot::Var(i as u8), Slot::Bound(p), Slot::Var(i as u8 + 1))
            })
            .collect();

        let outcome = solve_bgp(csr.store(), &patterns, 100_000, None).unwrap();
        prop_assert!(!outcome.truncated, "reference run must not truncate");

        let triples: Vec<(u32, u32, u32)> = csr
            .iter_triples()
            .map(|t| (t.s.0, t.p.0, t.o.0))
            .collect();
        let mut want = naive_bgp(&triples, &patterns, &outcome.vars);
        let mut got = outcome.rows.clone();
        want.sort();
        got.sort();
        prop_assert_eq!(got, want);

        for (name, kb) in &others {
            let theirs = solve_bgp(kb.store(), &patterns, 100_000, None).unwrap();
            prop_assert!(outcome == theirs, "{} disagrees with csr", name);
        }

        // Truncation keeps the deterministic prefix, on every store.
        if outcome.rows.len() > 1 {
            let limit = outcome.rows.len() - 1;
            for kb in std::iter::once(&csr).chain(others.iter().map(|(_, kb)| kb)) {
                let cut_run = solve_bgp(kb.store(), &patterns, limit, None).unwrap();
                prop_assert!(cut_run.truncated);
                prop_assert_eq!(&cut_run.rows[..], &outcome.rows[..limit]);
            }
        }
    }

    /// The `?explain=1` plan trace — chosen pattern order, per-pattern
    /// estimated-vs-actual cardinalities, merge-vs-nested join path,
    /// truncation — is identical on CSR, succinct, layered, and
    /// compacted-layered stores: cardinality estimates come from index
    /// sizes that all backends agree on, so the planner's choices (and
    /// therefore the explain body the server renders) are
    /// backend-independent by construction.
    #[test]
    fn prop_plan_traces_are_backend_independent(
        facts in proptest::collection::vec((0u8..12, 0u8..4, 0u8..12), 3..40),
        picks in proptest::collection::vec(0usize..40, 2..4),
        split in 0usize..40,
    ) {
        let cut = 1 + split % facts.len();
        let (csr, others) = stores(&facts, cut.min(facts.len()));
        let patterns: Vec<TriplePattern> = picks
            .iter()
            .enumerate()
            .map(|(i, &pick)| {
                let (_, p, _) = facts[pick % facts.len()];
                let p = csr.pred_id(&format!("p:r{p}")).unwrap().0;
                TriplePattern::new(Slot::Var(i as u8), Slot::Bound(p), Slot::Var(i as u8 + 1))
            })
            .collect();

        for limit in [100_000usize, 1] {
            let (outcome, trace) =
                solve_bgp_traced(csr.store(), &patterns, limit, None).unwrap();
            prop_assert_eq!(trace.steps.len(), patterns.len());
            for (name, kb) in &others {
                let (theirs, their_trace) =
                    solve_bgp_traced(kb.store(), &patterns, limit, None).unwrap();
                prop_assert!(outcome == theirs, "{} rows diverged at limit {}", name, limit);
                prop_assert!(
                    trace == their_trace,
                    "{} plan trace diverged at limit {}: {:?} vs {:?}",
                    name,
                    limit,
                    their_trace,
                    trace
                );
            }
        }
    }
}
