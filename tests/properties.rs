//! Property-based integration tests: invariants of the mining pipeline on
//! randomly generated miniature knowledge bases.

use proptest::prelude::*;

use remi_core::complexity::{CostModel, EntityCodeMode, Prominence};
use remi_core::enumerate::{subgraph_expressions, EnumContext};
use remi_core::eval::{raw_bindings, Evaluator};
use remi_core::{EnumerationConfig, Remi, RemiConfig};
use remi_kb::{KbBuilder, KnowledgeBase, NodeId};

/// A random miniature KB: `n` entities, `p` predicates, `m` random facts.
fn arb_kb() -> impl Strategy<Value = KnowledgeBase> {
    (2usize..12, 1usize..5, 1usize..60, any::<u64>()).prop_map(|(n, p, m, seed)| {
        // Simple deterministic pseudo-random fact generator (no rand dep
        // needed in the strategy itself).
        let mut state = seed | 1;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let mut b = KbBuilder::new();
        for _ in 0..m {
            let s = next() % n;
            let pr = next() % p;
            let o = next() % n;
            b.add_iri(&format!("e:n{s}"), &format!("p:r{pr}"), &format!("e:n{o}"));
        }
        // Guarantee non-emptiness.
        b.add_iri("e:n0", "p:r0", "e:n1");
        b.build().expect("non-empty")
    })
}

fn enum_config() -> EnumerationConfig {
    EnumerationConfig {
        prominent_cutoff: 0.0,
        max_exprs_per_entity: 2000,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every enumerated subgraph expression of `t` matches `t`.
    #[test]
    fn enumerated_expressions_match_their_entity(kb in arb_kb()) {
        let cfg = enum_config();
        let ctx = EnumContext::new(&kb, &cfg);
        for t in kb.entity_ids().take(6) {
            let (exprs, _) = subgraph_expressions(&kb, t, &cfg, &ctx);
            for e in &exprs {
                let bindings = raw_bindings(&kb, e);
                prop_assert!(
                    bindings.binary_search(&t.0).is_ok(),
                    "{e:?} does not match its source entity {t:?}"
                );
            }
        }
    }

    /// Binding sets are always sorted and duplicate-free.
    #[test]
    fn bindings_are_sorted_sets(kb in arb_kb()) {
        let cfg = enum_config();
        let ctx = EnumContext::new(&kb, &cfg);
        for t in kb.entity_ids().take(4) {
            let (exprs, _) = subgraph_expressions(&kb, t, &cfg, &ctx);
            for e in exprs.iter().take(50) {
                let b = raw_bindings(&kb, e);
                prop_assert!(b.windows(2).all(|w| w[0] < w[1]), "{e:?}: {b:?}");
            }
        }
    }

    /// If the miner reports an RE, its bindings equal the target set; if it
    /// reports NoSolution, even the maximal conjunction fails.
    #[test]
    fn mining_outcome_is_sound(kb in arb_kb()) {
        let config = RemiConfig {
            enumeration: enum_config(),
            ..Default::default()
        };
        let remi = Remi::new(&kb, config);
        let eval = Evaluator::new(&kb, 512);
        for t in kb.entity_ids().take(4) {
            let outcome = remi.describe(&[t]);
            if let Some((expr, _)) = &outcome.best {
                prop_assert!(eval.is_referring_expression(&expr.parts, &[t.0]));
            } else {
                // The maximal conjunction of all common expressions is the
                // most specific expression in the language; it must fail
                // too, otherwise the search missed a solution.
                let (queue, truncated) = remi.ranked_common_expressions(&[t]);
                if !truncated && !queue.is_empty() {
                    let all: Vec<_> = queue.iter().map(|s| s.expr).collect();
                    prop_assert!(
                        !eval.is_referring_expression(&all, &[t.0]),
                        "NoSolution but the maximal conjunction is an RE for {t:?}"
                    );
                }
            }
        }
    }

    /// Costs are non-negative and monotone under conjunction.
    #[test]
    fn costs_are_nonnegative_and_monotone(kb in arb_kb()) {
        let model = CostModel::new(&kb, Prominence::Frequency, EntityCodeMode::PowerLaw);
        let cfg = enum_config();
        let ctx = EnumContext::new(&kb, &cfg);
        for t in kb.entity_ids().take(3) {
            let (exprs, _) = subgraph_expressions(&kb, t, &cfg, &ctx);
            let list: Vec<_> = exprs.into_iter().take(20).collect();
            for e in &list {
                prop_assert!(model.subgraph_cost(e).value() >= 0.0);
            }
            if list.len() >= 2 {
                let single = model.parts_cost(&list[..1]);
                let pair = model.parts_cost(&list[..2]);
                prop_assert!(pair >= single);
            }
        }
    }

    /// Exact-rank and power-law entity codes agree on the ranking
    /// direction for extreme prominence gaps.
    #[test]
    fn cost_modes_agree_directionally(kb in arb_kb()) {
        let exact = CostModel::new(&kb, Prominence::Frequency, EntityCodeMode::ExactRank);
        let fitted = CostModel::new(&kb, Prominence::Frequency, EntityCodeMode::PowerLaw);
        for p in kb.pred_ids().take(3) {
            let idx = kb.index(p);
            let mut objs: Vec<(NodeId, usize)> = idx.iter_object_frequencies().collect();
            if objs.len() < 2 {
                continue;
            }
            objs.sort_by_key(|&(_, f)| f);
            let (least, least_f) = objs[0];
            let (most, most_f) = objs[objs.len() - 1];
            if most_f > least_f {
                prop_assert!(exact.entity_bits(most, p) <= exact.entity_bits(least, p));
                prop_assert!(fitted.entity_bits(most, p) <= fitted.entity_bits(least, p));
            }
        }
    }
}
