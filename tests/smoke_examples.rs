//! Smoke test: every `examples/` binary must run to completion.
//!
//! Each example regenerates part of the paper end to end, so running them
//! is the cheapest full-pipeline check we have. Spawning `cargo run` per
//! example roughly doubles local test latency, so this is gated: it runs
//! when `CI` is set (GitHub Actions sets it) or when explicitly requested
//! with `REMI_SMOKE_EXAMPLES=1`, and skips (passing) otherwise.

use std::process::Command;

const EXAMPLES: [&str; 7] = [
    "quickstart",
    "search_tree",
    "summarization",
    "journalism",
    "query_generation",
    "serving",
    "live_ingest",
];

#[test]
fn all_examples_run_to_completion() {
    let gated_on =
        std::env::var_os("CI").is_some() || std::env::var_os("REMI_SMOKE_EXAMPLES").is_some();
    if !gated_on {
        eprintln!("skipping example smoke test (set REMI_SMOKE_EXAMPLES=1 to run locally)");
        return;
    }
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    for example in EXAMPLES {
        let output = Command::new(&cargo)
            .args(["run", "--quiet", "--example", example])
            .env("RUST_BACKTRACE", "1")
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn cargo for example {example}: {e}"));
        assert!(
            output.status.success(),
            "example {example} failed with {}:\n--- stdout ---\n{}\n--- stderr ---\n{}",
            output.status,
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr),
        );
        assert!(
            !output.stdout.is_empty(),
            "example {example} produced no output"
        );
    }
}
