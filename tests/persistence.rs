//! Persistence integration: the binary format and N-Triples round trips
//! preserve mining behaviour, not just triple counts.

use remi_core::{Remi, RemiConfig};
use remi_synth::{dbpedia_like, generate};

#[test]
fn binary_roundtrip_preserves_mining_results() {
    let synth = generate(&dbpedia_like(), 0.5, 301);
    let kb = &synth.kb;
    let bytes = remi_kb::binfmt::write_bytes(kb);
    let kb2 = remi_kb::binfmt::read_bytes(&bytes, 0.01).expect("roundtrip loads");

    assert_eq!(kb.num_triples(), kb2.num_triples());
    assert_eq!(kb.num_nodes(), kb2.num_nodes());

    // The same targets must get the same-cost descriptions on both KBs.
    let remi1 = Remi::new(kb, RemiConfig::default());
    let remi2 = Remi::new(&kb2, RemiConfig::default());
    for &entity in synth.members("Settlement").iter().take(8) {
        // Node ids are preserved by the format (dictionary order is kept).
        let a = remi1.describe(&[entity]);
        let b = remi2.describe(&[entity]);
        assert_eq!(a.cost(), b.cost(), "cost drift after binary roundtrip");
    }
}

#[test]
fn ntriples_roundtrip_preserves_mining_results() {
    let synth = generate(&dbpedia_like(), 0.3, 303);
    let kb = &synth.kb;
    let mut nt = Vec::new();
    remi_kb::ntriples::write_kb(kb, &mut nt).expect("serialise");
    let kb2 = remi_kb::ntriples::parse_document(std::str::from_utf8(&nt).unwrap())
        .expect("parse back")
        .build_with_inverses(0.01)
        .expect("rebuild");

    assert_eq!(kb.num_triples(), kb2.num_triples());

    let remi1 = Remi::new(kb, RemiConfig::default());
    let remi2 = Remi::new(&kb2, RemiConfig::default());
    for &entity in synth.members("Person").iter().take(6) {
        let a = remi1.describe(&[entity]);
        // Map the entity into kb2's id space via its IRI.
        let iri = kb.node_key(entity).to_string();
        let entity2 = kb2.node_id_by_iri(&iri).expect("entity survives");
        let b = remi2.describe(&[entity2]);
        assert_eq!(
            a.cost(),
            b.cost(),
            "cost drift after N-Triples roundtrip for {iri}"
        );
    }
}

#[test]
fn binary_file_on_disk_roundtrip() {
    let synth = generate(&dbpedia_like(), 0.2, 307);
    let dir = std::env::temp_dir().join("remi_suite_persistence");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("kb.rkb");
    remi_kb::binfmt::save(&synth.kb, &path).expect("save");
    let loaded = remi_kb::binfmt::load(&path, 0.0).expect("load");
    assert_eq!(loaded.num_triples(), synth.kb.num_triples());
    // Compression: the binary file is smaller than the N-Triples dump.
    let mut nt = Vec::new();
    remi_kb::ntriples::write_kb(&synth.kb, &mut nt).unwrap();
    let bin_len = std::fs::metadata(&path).unwrap().len() as usize;
    assert!(
        bin_len < nt.len(),
        "binary ({bin_len}) should beat N-Triples ({})",
        nt.len()
    );
    std::fs::remove_file(&path).ok();
}
