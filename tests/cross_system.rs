//! Cross-system integration: REMI and the AMIE+ baseline must agree where
//! their languages coincide, and both must return genuine REs.

use std::sync::Arc;

use remi_amie::{is_re, mine_re, AmieConfig, AmieLanguage};
use remi_core::complexity::{CostModel, EntityCodeMode, Prominence};
use remi_core::{Remi, RemiConfig};
use remi_synth::{sample_target_sets, SynthKb, TargetSpec};

/// One shared world for the whole suite (memoised process-wide): each test
/// samples its own target sets with a distinct seed, so they still explore
/// different slices of it.
fn fixture() -> Arc<SynthKb> {
    remi_synth::fixtures::dbpedia(0.5, 201)
}

#[test]
fn amie_rules_are_genuine_res() {
    let synth = fixture();
    let kb = &synth.kb;
    let sets = sample_target_sets(
        &synth,
        &["Settlement", "Organization"],
        &TargetSpec {
            count: 8,
            size_proportions: [0.7, 0.3, 0.0],
            top_fraction: 0.5,
        },
        3,
    );
    let model = CostModel::new(kb, Prominence::Frequency, EntityCodeMode::PowerLaw);
    for set in &sets {
        let cfg = AmieConfig {
            language: AmieLanguage::Standard,
            timeout: Some(std::time::Duration::from_secs(10)),
            ..Default::default()
        };
        let outcome = mine_re(kb, &set.entities, cfg, Some(&model));
        for rule in &outcome.rules {
            assert!(
                is_re(kb, rule, &set.entities),
                "AMIE returned a non-RE rule: {}",
                rule.display(kb)
            );
        }
        if let Some((best, cost)) = &outcome.best {
            assert!(is_re(kb, best, &set.entities));
            assert!(!cost.is_infinite());
        }
    }
}

#[test]
fn standard_language_existence_agrees() {
    // Under the standard language (conjunctions of bound atoms on x) both
    // systems search the same expression space, so solution existence must
    // coincide whenever neither times out.
    let synth = fixture();
    let kb = &synth.kb;
    let remi = Remi::new(kb, RemiConfig::standard_language());
    let sets = sample_target_sets(
        &synth,
        &["Settlement", "Person"],
        &TargetSpec {
            count: 12,
            size_proportions: [0.6, 0.4, 0.0],
            top_fraction: 0.5,
        },
        5,
    );
    for set in &sets {
        let remi_outcome = remi.describe(&set.entities);
        let amie_outcome = mine_re(
            kb,
            &set.entities,
            AmieConfig {
                language: AmieLanguage::Standard,
                timeout: Some(std::time::Duration::from_secs(20)),
                threads: 4,
                ..Default::default()
            },
            None,
        );
        if amie_outcome.timed_out {
            continue; // no claim possible
        }
        assert_eq!(
            remi_outcome.best.is_some(),
            !amie_outcome.rules.is_empty(),
            "existence disagreement on {:?} (remi: {:?}, amie rules: {})",
            set.entities,
            remi_outcome.status,
            amie_outcome.rules.len()
        );
    }
}

#[test]
fn amie_extended_finds_res_remi_finds() {
    // REMI's language is a fragment of AMIE's (every Table 1 shape is a
    // closed rule of ≤3 body atoms), so whenever REMI's best RE uses ≤3
    // atoms in total, a non-timed-out AMIE must also find some RE.
    let synth = fixture();
    let kb = &synth.kb;
    let remi = Remi::new(kb, RemiConfig::default());
    let sets = sample_target_sets(
        &synth,
        &["Organization"],
        &TargetSpec {
            count: 6,
            size_proportions: [1.0, 0.0, 0.0],
            top_fraction: 0.4,
        },
        7,
    );
    for set in &sets {
        let remi_outcome = remi.describe(&set.entities);
        let Some((expr, _)) = &remi_outcome.best else {
            continue;
        };
        if expr.num_atoms() > 3 {
            continue; // outside AMIE's l = 4 bound
        }
        let amie_outcome = mine_re(
            kb,
            &set.entities,
            AmieConfig {
                language: AmieLanguage::Extended,
                timeout: Some(std::time::Duration::from_secs(30)),
                threads: 4,
                ..Default::default()
            },
            None,
        );
        if amie_outcome.timed_out {
            continue;
        }
        assert!(
            !amie_outcome.rules.is_empty(),
            "REMI found {} but AMIE found nothing for {:?}",
            expr.display(kb),
            set.entities
        );
    }
}
