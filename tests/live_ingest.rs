//! Live-ingestion integration suite: the delta-overlay subsystem proved
//! against from-scratch rebuilds, concurrent miners, and the HTTP layer.
//!
//! The load-bearing property: after ANY append schedule, the layered
//! store answers every `TripleStore` primitive identically to a KB
//! rebuilt from the full triple set — on both physical backends, before
//! and after compaction. On top of that: epoch snapshots are torn-read
//! free under concurrent appends, and fingerprint rotation purges the
//! serve cache instead of leaking stale generations.

use proptest::prelude::*;
use remi_kb::delta::CompactionPolicy;
use remi_kb::term::Term;
use remi_kb::{Backend, KbBuilder, KnowledgeBase, LiveKb, NodeId, TripleStore};
use remi_serve::client::Client;
use remi_serve::http::percent_encode;
use remi_serve::{serve, ServeConfig};

type Fact = (u8, u8, u8);

fn iri3(f: Fact) -> (Term, String, Term) {
    (
        Term::iri(format!("e:n{}", f.0)),
        format!("p:r{}", f.1),
        Term::iri(format!("e:n{}", f.2)),
    )
}

fn build_kb(facts: &[Fact]) -> KnowledgeBase {
    let mut b = KbBuilder::new();
    for &(s, p, o) in facts {
        b.add_iri(&format!("e:n{s}"), &format!("p:r{p}"), &format!("e:n{o}"));
    }
    b.build().expect("non-empty")
}

/// Every `TripleStore` primitive of `live` must agree with `want`.
/// Dictionaries are id-identical by construction (same intern order), so
/// ids compare directly.
fn assert_equivalent(live: &KnowledgeBase, want: &KnowledgeBase) {
    assert_eq!(live.num_nodes(), want.num_nodes());
    assert_eq!(live.num_preds(), want.num_preds());
    assert_eq!(live.num_triples(), want.num_triples());
    assert_eq!(
        live.num_triples_with_inverses(),
        want.num_triples_with_inverses()
    );
    for p in want.pred_ids() {
        let (a, b) = (live.index(p), want.index(p));
        assert_eq!(a.num_facts(), b.num_facts(), "num_facts({p:?})");
        assert_eq!(a.num_subjects(), b.num_subjects(), "num_subjects({p:?})");
        assert_eq!(a.num_objects(), b.num_objects(), "num_objects({p:?})");
        // Sequential group scans in both directions.
        let got: Vec<(NodeId, Vec<u32>)> = a
            .iter_subjects()
            .map(|(s, objs)| (s, objs.to_vec()))
            .collect();
        let expect: Vec<(NodeId, Vec<u32>)> = b
            .iter_subjects()
            .map(|(s, objs)| (s, objs.to_vec()))
            .collect();
        assert_eq!(got, expect, "iter_subjects({p:?})");
        let got: Vec<(NodeId, Vec<u32>)> = a
            .iter_objects_grouped()
            .map(|(o, subs)| (o, subs.to_vec()))
            .collect();
        let expect: Vec<(NodeId, Vec<u32>)> = b
            .iter_objects_grouped()
            .map(|(o, subs)| (o, subs.to_vec()))
            .collect();
        assert_eq!(got, expect, "iter_objects_grouped({p:?})");
        // Random-access directory primitives (the store-level API the
        // group iterators are built from).
        let (ls, ws) = (live.store(), want.store());
        for i in 0..b.num_subjects() {
            assert_eq!(ls.subject_at(p, i), ws.subject_at(p, i));
            assert_eq!(ls.objects_at(p, i).to_vec(), ws.objects_at(p, i).to_vec());
        }
        for i in 0..b.num_objects() {
            assert_eq!(ls.object_at(p, i), ws.object_at(p, i));
            assert_eq!(ls.subjects_at(p, i).to_vec(), ws.subjects_at(p, i).to_vec());
            assert_eq!(ls.object_group_len(p, i), ws.object_group_len(p, i));
        }
    }
    for n in want.node_ids() {
        assert_eq!(
            live.preds_of_subject(n).to_vec(),
            want.preds_of_subject(n).to_vec(),
            "preds_of_subject({n:?})"
        );
        assert_eq!(live.node_frequency(n), want.node_frequency(n));
        // Point lookups across every predicate for a few nodes would be
        // O(n·p); the per-pred scans above already cover bindings. Spot
        // the contains path instead.
        for p in want.pred_ids() {
            let objs = want.objects(p, n);
            assert_eq!(live.objects(p, n).to_vec(), objs.to_vec());
            if let Some(o) = objs.first() {
                assert!(live.contains(n, p, NodeId(o)));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The differential proof: LiveKb over any base, fed any append
    /// schedule, answers exactly like a KB rebuilt from the full triple
    /// set — on both backends, and again after folding the delta.
    #[test]
    fn prop_layered_equals_rebuild_on_both_backends(
        base in proptest::collection::vec((0u8..24, 0u8..5, 0u8..24), 1..40),
        schedule in proptest::collection::vec(
            proptest::collection::vec((0u8..32, 0u8..7, 0u8..32), 1..20),
            1..5,
        ),
    ) {
        for backend in [Backend::Csr, Backend::Succinct] {
            let live = LiveKb::new(build_kb(&base).with_backend(backend));
            // The reference rebuild interns in the same order the live
            // path does, so dictionary ids line up exactly.
            let mut reference = KbBuilder::new();
            for &(s, p, o) in &base {
                reference.add_iri(
                    &format!("e:n{s}"), &format!("p:r{p}"), &format!("e:n{o}"));
            }
            for batch in &schedule {
                live.append(batch.iter().map(|&f| iri3(f)));
                for &(s, p, o) in batch {
                    reference.add_iri(
                        &format!("e:n{s}"), &format!("p:r{p}"), &format!("e:n{o}"));
                }
            }
            let want = reference.build().expect("non-empty");
            let snap = live.snapshot();
            prop_assert_eq!(snap.kb.backend(), backend);
            assert_equivalent(&snap.kb, &want);

            // Compaction folds the overlay without changing a single
            // answer (or the fingerprint).
            live.compact();
            let folded = live.snapshot();
            prop_assert_eq!(folded.fingerprint, snap.fingerprint);
            assert_equivalent(&folded.kb, &want);
        }
    }
}

/// Epoch snapshots under concurrent appends and compactions: readers pin
/// a snapshot and verify its internal invariants hold however the writer
/// races them (the torn-read test at the library layer).
#[test]
fn concurrent_appends_never_tear_a_pinned_snapshot() {
    let live = LiveKb::with_policy(
        build_kb(&[(0, 0, 1), (1, 0, 2), (2, 1, 0)]),
        CompactionPolicy {
            min_delta: 40,
            delta_fraction: 0.0,
        },
    );
    let writers = 3usize;
    let batches = 40usize;
    std::thread::scope(|scope| {
        for w in 0..writers {
            let live = &live;
            scope.spawn(move || {
                for b in 0..batches {
                    let tag = (w * batches + b) as u8;
                    live.append(vec![
                        iri3((tag, 2, tag.wrapping_add(1))),
                        iri3((tag, 3, tag.wrapping_add(2))),
                    ]);
                    if b % 16 == 0 {
                        live.compact();
                    }
                }
            });
        }
        for _ in 0..2 {
            let live = &live;
            scope.spawn(move || {
                let mut last_epoch = 0u64;
                for _ in 0..200 {
                    let snap = live.snapshot();
                    // Epochs are monotonic from any one reader's view.
                    assert!(snap.epoch >= last_epoch, "epoch went backwards");
                    last_epoch = snap.epoch;
                    let kb = &snap.kb;
                    // Internal consistency of the pinned view: per-pred
                    // fact counts, sorted bindings, and direction
                    // agreement — violated only by a torn store.
                    let total: usize = kb.pred_ids().map(|p| kb.index(p).num_facts()).sum();
                    assert_eq!(total, kb.num_triples_with_inverses());
                    for p in kb.pred_ids() {
                        let idx = kb.index(p);
                        let mut seen = 0usize;
                        for (s, objs) in idx.iter_subjects() {
                            let objs = objs.to_vec();
                            assert!(objs.windows(2).all(|w| w[0] < w[1]), "unsorted");
                            seen += objs.len();
                            for &o in &objs {
                                assert!(
                                    idx.subjects_of(NodeId(o)).contains_sorted(s.0),
                                    "missing reverse edge in pinned snapshot"
                                );
                            }
                        }
                        assert_eq!(seen, idx.num_facts(), "group scan vs count");
                    }
                }
            });
        }
    });
    // Everything every writer appended is present in the final view.
    let snap = live.snapshot();
    for w in 0..writers {
        for b in 0..batches {
            let tag = (w * batches + b) as u8;
            let s = snap.kb.node_id_by_iri(&format!("e:n{tag}")).unwrap();
            let p = snap.kb.pred_id("p:r2").unwrap();
            let o = snap
                .kb
                .node_id_by_iri(&format!("e:n{}", tag.wrapping_add(1)))
                .unwrap();
            assert!(snap.kb.contains(s, p, o), "lost write w={w} b={b}");
        }
    }
}

// ---------------------------------------------------------------------------
// HTTP layer

fn world() -> std::sync::Arc<remi_synth::SynthKb> {
    remi_synth::fixtures::dbpedia(0.3, 11)
}

fn describable(synth: &remi_synth::SynthKb) -> String {
    let kb = &synth.kb;
    kb.entity_ids()
        .find(|&e| !kb.preds_of_subject(e).is_empty())
        .map(|e| kb.node_key(e).to_string())
        .expect("describable entity")
}

/// Served describes stay byte-identical across a no-op compaction, and
/// the stable fingerprint keeps the cache warm through it.
#[test]
fn describe_bytes_survive_a_noop_compaction() {
    let synth = world();
    let iri = describable(&synth);
    let mut server = serve(
        synth.kb.clone(),
        ServeConfig {
            compact_min_delta: 1, // any ingest schedules a fold
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let mut c = Client::connect(server.addr()).unwrap();

    // Grow the delta, then describe on the layered view.
    let ingest = c
        .post("/ingest", "<e:live_x> <p:liveRel> <e:live_y> .\n")
        .unwrap();
    assert_eq!(ingest.status, 200, "{}", ingest.body);
    let before = c
        .get(&format!("/describe/{}?threads=1", percent_encode(&iri)))
        .unwrap();
    assert_eq!(before.status, 200, "{}", before.body);

    // Wait for the background compaction to fold the delta.
    let compacted = (0..200).any(|_| {
        std::thread::sleep(std::time::Duration::from_millis(10));
        let stats = c.get("/stats").unwrap().body;
        stats.contains("\"compactions\":1") && stats.contains("\"delta_triples\":0")
    });
    assert!(compacted, "background compaction never ran");

    // Same request: a cache hit (the fingerprint survived the fold), and
    // byte-identical.
    let warm = c
        .get(&format!("/describe/{}?threads=1", percent_encode(&iri)))
        .unwrap();
    assert_eq!(warm.header("x-remi-cache"), Some("hit"));
    assert_eq!(warm.body, before.body);

    // A fresh cache key after the fold: mined on the compacted base, and
    // still byte-identical (threads never changes rendered bytes).
    let remined = c
        .get(&format!("/describe/{}?threads=2", percent_encode(&iri)))
        .unwrap();
    assert_eq!(remined.header("x-remi-cache"), Some("miss"));
    assert_eq!(remined.body, before.body);
    server.shutdown();
}

/// The serve-level hammer: ingest batches land while miners describe on
/// pinned snapshots. Every response is clean, epochs advance, and
/// fingerprint rotation purges the stale cache generations.
#[test]
fn concurrent_ingest_vs_describe_over_http() {
    let synth = world();
    let iris: Vec<String> = {
        let kb = &synth.kb;
        kb.entity_ids()
            .filter(|&e| !kb.preds_of_subject(e).is_empty())
            .take(4)
            .map(|e| kb.node_key(e).to_string())
            .collect()
    };
    let mut server = serve(
        synth.kb.clone(),
        ServeConfig {
            compact_min_delta: 25,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    let ingests = 30usize;
    std::thread::scope(|scope| {
        for w in 0..2 {
            scope.spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                for i in 0..ingests {
                    let body = format!("<e:hammer_{w}_{i}> <p:hammered> <e:hammerBatch_{w}> .\n");
                    let r = c.post("/ingest", &body).unwrap();
                    assert_eq!(r.status, 200, "{}", r.body);
                }
            });
        }
        for r in 0..2 {
            let iris = &iris;
            scope.spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                for i in 0..40 {
                    let iri = &iris[(r + i) % iris.len()];
                    let resp = c
                        .get(&format!("/describe/{}", percent_encode(iri)))
                        .unwrap();
                    assert_eq!(resp.status, 200, "{iri}: {}", resp.body);
                    // A torn snapshot would surface as a 500 or a
                    // malformed body; every body must be the canonical
                    // JSON shell.
                    assert!(
                        resp.body.starts_with("{\"entity\":"),
                        "malformed body: {}",
                        resp.body
                    );
                }
            });
        }
    });

    let mut c = Client::connect(addr).unwrap();
    let stats = c.get("/stats").unwrap().body;
    assert!(
        stats.contains(&format!("\"ingests\":{}", 2 * ingests)),
        "{stats}"
    );
    assert!(!stats.contains("\"server_errors\":1"), "{stats}");

    // Rotation accounting: every ingest that followed a cached describe
    // purged that generation, so stale entries never pile up. The cache
    // can only hold current-generation entries now.
    let fp_purges: u64 = {
        let needle = "\"purged\":";
        let at = stats.find(needle).expect("purged counter in stats");
        stats[at + needle.len()..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect::<String>()
            .parse()
            .unwrap()
    };
    // Describe twice on the final generation: the second must hit,
    // proving purges never evict the live generation.
    let a = c
        .get(&format!("/describe/{}", percent_encode(&iris[0])))
        .unwrap();
    let b = c
        .get(&format!("/describe/{}", percent_encode(&iris[0])))
        .unwrap();
    assert_eq!(b.header("x-remi-cache"), Some("hit"));
    assert_eq!(a.body, b.body);
    // And ingesting one more batch purges exactly the entries of the
    // now-dead generation (at least the one we just cached).
    let r = c
        .post("/ingest", "<e:final_probe> <p:hammered> <e:final> .\n")
        .unwrap();
    assert_eq!(r.status, 200);
    assert!(
        r.body.contains("\"cache_purged\":"),
        "ingest response reports purges: {}",
        r.body
    );
    let stats_after = c.get("/stats").unwrap().body;
    let fp_purges_after: u64 = {
        let needle = "\"purged\":";
        let at = stats_after.find(needle).expect("purged counter");
        stats_after[at + needle.len()..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect::<String>()
            .parse()
            .unwrap()
    };
    assert!(
        fp_purges_after > fp_purges,
        "rotation must purge the stale generation ({fp_purges} → {fp_purges_after})"
    );
    server.shutdown();
}
