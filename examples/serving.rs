//! Serving REMI online: boot the embedded HTTP service over a synthetic
//! KB, query it over real TCP, and shut it down gracefully.
//!
//! Run with `cargo run --example serving`.

use remi_serve::client::Client;
use remi_serve::http::percent_encode;
use remi_serve::{serve, ServeConfig};

fn main() {
    // A small DBpedia-like world (fixed seed: the output is stable).
    let synth = remi_synth::generate(&remi_synth::dbpedia_like(), 0.2, 42);
    let entity = synth
        .members("Person")
        .first()
        .map(|&e| synth.kb.node_key(e).to_string())
        .expect("the profile always populates Person");

    // Boot on an ephemeral port; the KB stays resident for the server's
    // lifetime and mined descriptions are cached.
    let mut server = serve(
        synth.kb.clone(),
        ServeConfig {
            cache_entries: 256,
            ..ServeConfig::default()
        },
    )
    .expect("bind an ephemeral loopback port");
    println!(
        "serving a {}-triple KB on {}",
        synth.kb.num_triples(),
        server.url()
    );

    let mut client = Client::connect(server.addr()).expect("connect");

    let health = client.get("/healthz").expect("healthz");
    println!("GET /healthz → {} {}", health.status, health.body);

    // First describe mines; the repeat is answered from the cache.
    let target = format!("/describe/{}", percent_encode(&entity));
    let cold = client.get(&target).expect("describe");
    println!(
        "GET {target} → {} ({}) {}",
        cold.status,
        cold.header("x-remi-cache").unwrap_or("?"),
        cold.body
    );
    let warm = client.get(&target).expect("describe again");
    println!(
        "GET {target} → {} ({}) [bytes identical: {}]",
        warm.status,
        warm.header("x-remi-cache").unwrap_or("?"),
        warm.body == cold.body
    );

    let summary = client
        .get(&format!("/summarize/{}?k=3", percent_encode(&entity)))
        .expect("summarize");
    println!("GET /summarize/... → {} {}", summary.status, summary.body);

    let stats = client.get("/stats").expect("stats");
    println!("GET /stats → {} {}", stats.status, stats.body);

    server.shutdown();
    println!("server drained and shut down");
}
