//! Figure 1: the DFS search space over conjunctions of subgraph
//! expressions, rendered for a Rennes/Nantes-style target pair.
//!
//! Each node of the tree is a conjunction; its `Ĉ` is shown in
//! parentheses. Nodes that are referring expressions are marked — below
//! them the search prunes by depth; to their right it prunes sideways.
//!
//! Run with `cargo run --example search_tree`.

use remi_core::eval::Evaluator;
use remi_core::{Remi, RemiConfig, SubgraphExpr};
use remi_kb::{KbBuilder, KnowledgeBase};

fn build_kb() -> KnowledgeBase {
    let mut b = KbBuilder::new();
    // Rennes and Nantes: Breton cities with Socialist mayors; the paper's
    // Figure 1 scenario (ρ1 = belongedTo(x, Brittany),
    // ρ2 = mayor(x,y) ∧ party(y, Socialist), ρ3 = placeOf(x, Epitech)).
    for city in ["Rennes", "Nantes"] {
        b.add_iri(&format!("e:{city}"), "p:belongedTo", "e:Brittany");
        b.add_iri(&format!("e:{city}"), "p:mayor", &format!("e:mayor{city}"));
        b.add_iri(&format!("e:mayor{city}"), "p:party", "e:Socialist");
        b.add_iri(&format!("e:{city}"), "p:placeOf", "e:Epitech");
    }
    // Distractors that break each single expression.
    b.add_iri("e:Vannes", "p:belongedTo", "e:Brittany");
    b.add_iri("e:Lille", "p:mayor", "e:mayorLille");
    b.add_iri("e:mayorLille", "p:party", "e:Socialist");
    b.add_iri("e:Paris", "p:placeOf", "e:Epitech");
    // Background facts that differentiate the frequency ranks — the
    // Figure 1 costs (3), (4), (5) come from concepts having different
    // prominence, so give belongedTo < mayor/party < placeOf frequency.
    for i in 0..8 {
        b.add_iri(&format!("e:city{i}"), "p:belongedTo", "e:Normandy");
    }
    for i in 0..4 {
        b.add_iri(&format!("e:city{i}"), "p:mayor", &format!("e:m{i}"));
        b.add_iri(&format!("e:m{i}"), "p:party", "e:Green");
    }
    b.add_iri("e:city0", "p:placeOf", "e:SomeSchool");
    b.build().expect("non-empty KB")
}

/// Recursively prints the conjunction tree the DFS walks over.
fn print_tree(
    eval: &Evaluator<'_>,
    queue: &[(SubgraphExpr, remi_core::Bits)],
    targets: &[u32],
    prefix: &mut Vec<usize>,
    indent: usize,
    max_depth: usize,
) {
    if indent >= max_depth {
        return;
    }
    let start = prefix.last().map(|&i| i + 1).unwrap_or(0);
    for i in start..queue.len() {
        prefix.push(i);
        let parts: Vec<SubgraphExpr> = prefix.iter().map(|&k| queue[k].0).collect();
        let cost: remi_core::Bits = prefix.iter().map(|&k| queue[k].1).sum();
        let is_re = eval.is_referring_expression(&parts, targets);
        let label: Vec<String> = prefix.iter().map(|&k| format!("ρ{}", k + 1)).collect();
        println!(
            "{}{} ({:.1}){}",
            "    ".repeat(indent),
            label.join(" ∧ "),
            cost.value(),
            if is_re {
                "   ← RE (prune below & right)"
            } else {
                ""
            }
        );
        if !is_re {
            print_tree(eval, queue, targets, prefix, indent + 1, max_depth);
        }
        prefix.pop();
        if is_re {
            break; // side pruning: skip more complex siblings
        }
    }
}

fn main() {
    let kb = build_kb();
    let mut config = RemiConfig::default();
    config.enumeration.prominent_cutoff = 0.0;
    let remi = Remi::new(&kb, config);

    let targets = [
        kb.node_id_by_iri("e:Rennes").unwrap(),
        kb.node_id_by_iri("e:Nantes").unwrap(),
    ];
    let (queue, _) = remi.ranked_common_expressions(&targets);

    println!("Common subgraph expressions for {{Rennes, Nantes}}, sorted by Ĉ:");
    for (i, se) in queue.iter().enumerate() {
        println!(
            "  ρ{} = {}   ({:.1})",
            i + 1,
            se.expr.display(&kb),
            se.cost.value()
        );
    }
    println!("\nSearch tree (Figure 1; Ĉ in parentheses):\n∅");

    let eval = Evaluator::new(&kb, 1024);
    let mut sorted_targets: Vec<u32> = targets.iter().map(|t| t.0).collect();
    sorted_targets.sort_unstable();
    let scored: Vec<(SubgraphExpr, remi_core::Bits)> =
        queue.iter().map(|s| (s.expr, s.cost)).collect();
    let mut prefix = Vec::new();
    print_tree(&eval, &scored, &sorted_targets, &mut prefix, 0, 4);

    let outcome = remi.describe(&targets);
    let (best, cost) = outcome.best.expect("an RE exists");
    println!("\nREMI's answer: {}   [Ĉ = {}]", best.display(&kb), cost);
    println!(
        "verbalised:    {}",
        remi_core::verbalize::verbalize(&kb, &best)
    );
}
