//! Algorithmic journalism: generate story-ready descriptions for sets of
//! entities out of a large knowledge base — one of the paper's motivating
//! applications (§1).
//!
//! The example generates a DBpedia-like KB, picks newsworthy entity sets
//! (a prominent organisation, a pair of settlements, a trio of films) and
//! prints natural-language referring expressions for each, with the
//! mining statistics a production system would log.
//!
//! Run with `cargo run --release --example journalism`.

use remi_core::{Remi, RemiConfig, SearchStatus};
use remi_kb::NodeId;
use remi_synth::{dbpedia_like, generate, sample_target_sets, TargetSpec};

fn main() {
    let synth = generate(&dbpedia_like(), 4.0, 2026);
    let kb = &synth.kb;
    println!(
        "newsroom KB: {} facts, {} entities, {} predicates\n",
        kb.num_triples(),
        kb.num_nodes(),
        kb.num_preds()
    );

    let remi = Remi::new(kb, RemiConfig::default().with_threads(4));

    // A few editorially chosen subjects…
    let handpicked: Vec<(&str, Vec<NodeId>)> = vec![
        (
            "today's company profile",
            vec![synth.members("Organization")[0]],
        ),
        (
            "twin-city feature",
            synth.members("Settlement")[..2].to_vec(),
        ),
        ("film round-up", synth.members("Film")[..3].to_vec()),
    ];
    // …plus a sample of the long tail, as a bot would batch-process.
    let spec = TargetSpec {
        count: 6,
        size_proportions: [0.5, 0.3, 0.2],
        top_fraction: 0.3,
    };
    let batch = sample_target_sets(&synth, &["Person", "Settlement", "Album"], &spec, 7);

    let mut stories = handpicked;
    for set in batch {
        stories.push(("wire item", set.entities.clone()));
    }

    for (rubric, entities) in stories {
        let names: Vec<String> = entities.iter().map(|&e| kb.node_name(e)).collect();
        println!("[{rubric}] subjects: {}", names.join(", "));
        let outcome = remi.describe(&entities);
        match (&outcome.best, outcome.status) {
            (Some((expr, cost)), _) => {
                println!("  lead-in:  {}", remi_core::verbalize::verbalize(kb, expr));
                println!(
                    "  formal:   {}   [Ĉ = {}, queue {}, {} RE tests, {:?} total]",
                    expr.display(kb),
                    cost,
                    outcome.stats.queue_size,
                    outcome.stats.re_tests,
                    outcome.stats.queue_time + outcome.stats.search_time,
                );
            }
            (None, SearchStatus::NoSolution) => {
                println!("  (no unambiguous description exists in the KB — editor needed)");
            }
            (None, status) => println!("  (mining ended with {status:?})"),
        }
        println!();
    }
}
