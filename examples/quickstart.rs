//! Quickstart: build a small KB by hand and mine referring expressions.
//!
//! Reproduces the paper's running examples end to end:
//! * §2.2.2 — `in(x, South America) ∧ officialLanguage(x, y) ∧
//!   langFamily(y, Germanic)` for {Guyana, Suriname};
//! * §1     — `capitalOf(x, France)` for Paris;
//! * Table 1 — one instance of every subgraph-expression shape.
//!
//! Run with `cargo run --example quickstart`.

use remi_core::{LanguageBias, Remi, RemiConfig, SubgraphExpr};
use remi_kb::{KbBuilder, KnowledgeBase, NodeId};

fn build_kb() -> KnowledgeBase {
    let mut b = KbBuilder::new();
    // Countries of the Americas and Europe with their languages.
    for (country, region, lang) in [
        ("Guyana", "SouthAmerica", "English"),
        ("Suriname", "SouthAmerica", "Dutch"),
        ("Brazil", "SouthAmerica", "Portuguese"),
        ("Peru", "SouthAmerica", "Spanish"),
        ("Argentina", "SouthAmerica", "Spanish"),
        ("Germany", "Europe", "German"),
        ("France", "Europe", "French"),
    ] {
        b.add_iri(&format!("e:{country}"), "p:in", &format!("e:{region}"));
        b.add_iri(
            &format!("e:{country}"),
            "p:officialLanguage",
            &format!("e:{lang}"),
        );
    }
    for (lang, family) in [
        ("English", "Germanic"),
        ("Dutch", "Germanic"),
        ("German", "Germanic"),
        ("Portuguese", "Romance"),
        ("Spanish", "Romance"),
        ("French", "Romance"),
    ] {
        b.add_iri(&format!("e:{lang}"), "p:langFamily", &format!("e:{family}"));
    }
    // Paris, the §1 example.
    b.add_iri("e:Paris", "p:capitalOf", "e:France");
    b.add_iri("e:Paris", "p:cityIn", "e:France");
    b.add_iri("e:Lyon", "p:cityIn", "e:France");
    b.add_iri("e:Marseille", "p:cityIn", "e:France");
    b.build().expect("non-empty KB")
}

fn node(kb: &KnowledgeBase, iri: &str) -> NodeId {
    kb.node_id_by_iri(iri).expect("entity exists")
}

fn main() {
    let kb = build_kb();
    println!(
        "KB: {} triples, {} nodes, {} predicates\n",
        kb.num_triples(),
        kb.num_nodes(),
        kb.num_preds()
    );

    // Disable the prominent-object pruning: this KB is tiny and every
    // entity would land in the top 5 %.
    let mut config = RemiConfig::default();
    config.enumeration.prominent_cutoff = 0.0;
    let remi = Remi::new(&kb, config);

    // --- The §1 example: describe Paris. ---
    let paris = node(&kb, "e:Paris");
    let outcome = remi.describe(&[paris]);
    let (expr, cost) = outcome.best.expect("Paris is uniquely identifiable");
    println!(
        "RE for Paris:            {}   [Ĉ = {}]",
        expr.display(&kb),
        cost
    );
    println!(
        "  verbalised: {}\n",
        remi_core::verbalize::verbalize(&kb, &expr)
    );

    // --- The §2.2.2 example: describe {Guyana, Suriname}. ---
    let targets = [node(&kb, "e:Guyana"), node(&kb, "e:Suriname")];
    let outcome = remi.describe(&targets);
    let (expr, cost) = outcome.best.expect("the Germanic-language RE exists");
    println!(
        "RE for Guyana+Suriname:  {}   [Ĉ = {}]",
        expr.display(&kb),
        cost
    );
    println!(
        "  verbalised: {}",
        remi_core::verbalize::verbalize(&kb, &expr)
    );
    println!(
        "  queue had {} common subgraph expressions; {} RE tests\n",
        outcome.stats.queue_size, outcome.stats.re_tests
    );

    // --- The same set under the state-of-the-art language bias fails. ---
    let mut std_config = RemiConfig::standard_language();
    std_config.enumeration.prominent_cutoff = 0.0;
    let remi_std = Remi::new(&kb, std_config);
    let std_outcome = remi_std.describe(&targets);
    println!(
        "Standard language bias on the same set: {:?} — the extended bias is what makes the set describable.\n",
        std_outcome.status
    );

    // --- Table 1: the five shapes of REMI's language. ---
    println!("Table 1 — REMI's subgraph expression shapes:");
    let in_p = kb.pred_id("p:in").unwrap();
    let lang_p = kb.pred_id("p:officialLanguage").unwrap();
    let fam_p = kb.pred_id("p:langFamily").unwrap();
    let city_p = kb.pred_id("p:cityIn").unwrap();
    let cap_p = kb.pred_id("p:capitalOf").unwrap();
    let sa = node(&kb, "e:SouthAmerica");
    let germanic = node(&kb, "e:Germanic");
    let shapes: Vec<(&str, SubgraphExpr)> = vec![
        ("1 atom", SubgraphExpr::Atom { p: in_p, o: sa }),
        (
            "path",
            SubgraphExpr::Path {
                p0: lang_p,
                p1: fam_p,
                o: germanic,
            },
        ),
        (
            "path + star",
            SubgraphExpr::path_star(lang_p, (fam_p, germanic), (fam_p, node(&kb, "e:Romance"))),
        ),
        ("2 closed atoms", SubgraphExpr::closed2(cap_p, city_p)),
        ("3 closed atoms", SubgraphExpr::closed3(cap_p, city_p, in_p)),
    ];
    for (name, shape) in shapes {
        println!(
            "  {:<16} {}   [Ĉ = {}]",
            name,
            shape.display(&kb),
            remi.model().subgraph_cost(&shape)
        );
    }

    // Double-check the language-bias flags behave as documented.
    assert_eq!(remi.config().enumeration.language, LanguageBias::Remi);
}
