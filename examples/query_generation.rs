//! Query generation for KB maintenance (§1): translate mined referring
//! expressions into SPARQL SELECT queries that retrieve exactly the
//! target entities — useful for writing integrity checks and curation
//! queries without knowing the entities' IRIs.
//!
//! Run with `cargo run --release --example query_generation`.

use remi_core::{Expression, Remi, RemiConfig, SubgraphExpr};
use remi_kb::KnowledgeBase;
use remi_synth::{dbpedia_like, generate};

/// Renders an [`Expression`] as a SPARQL SELECT query over variable `?x`.
fn to_sparql(kb: &KnowledgeBase, e: &Expression) -> String {
    let mut lines = Vec::new();
    let mut var_counter = 0usize;
    for part in &e.parts {
        let mut fresh = || {
            var_counter += 1;
            format!("?y{var_counter}")
        };
        match *part {
            SubgraphExpr::Atom { p, o } => {
                lines.push(format!("  ?x <{}> {} .", kb.pred_iri(p), term(kb, o)));
            }
            SubgraphExpr::Path { p0, p1, o } => {
                let y = fresh();
                lines.push(format!("  ?x <{}> {y} .", kb.pred_iri(p0)));
                lines.push(format!("  {y} <{}> {} .", kb.pred_iri(p1), term(kb, o)));
            }
            SubgraphExpr::PathStar { p0, p1, o1, p2, o2 } => {
                let y = fresh();
                lines.push(format!("  ?x <{}> {y} .", kb.pred_iri(p0)));
                lines.push(format!("  {y} <{}> {} .", kb.pred_iri(p1), term(kb, o1)));
                lines.push(format!("  {y} <{}> {} .", kb.pred_iri(p2), term(kb, o2)));
            }
            SubgraphExpr::Closed2 { p0, p1 } => {
                let y = fresh();
                lines.push(format!("  ?x <{}> {y} .", kb.pred_iri(p0)));
                lines.push(format!("  ?x <{}> {y} .", kb.pred_iri(p1)));
            }
            SubgraphExpr::Closed3 { p0, p1, p2 } => {
                let y = fresh();
                lines.push(format!("  ?x <{}> {y} .", kb.pred_iri(p0)));
                lines.push(format!("  ?x <{}> {y} .", kb.pred_iri(p1)));
                lines.push(format!("  ?x <{}> {y} .", kb.pred_iri(p2)));
            }
        }
    }
    format!("SELECT DISTINCT ?x WHERE {{\n{}\n}}", lines.join("\n"))
}

fn term(kb: &KnowledgeBase, o: remi_kb::NodeId) -> String {
    match kb.node_term(o) {
        remi_kb::Term::Iri(iri) => format!("<{iri}>"),
        other => other.to_string(),
    }
}

fn main() {
    let synth = generate(&dbpedia_like(), 3.0, 99);
    let kb = &synth.kb;
    let remi = Remi::new(kb, RemiConfig::default());

    println!("Generating curation queries for prominent entities:\n");
    let mut generated = 0;
    for class in ["Organization", "Settlement", "Person"] {
        for &entity in synth.members(class).iter().take(4) {
            let outcome = remi.describe(&[entity]);
            let Some((expr, _)) = outcome.best else {
                continue;
            };
            generated += 1;
            println!(
                "-- query #{generated}: retrieves exactly <{}> ({})",
                kb.node_key(entity),
                kb.node_name(entity)
            );
            println!("{}\n", to_sparql(kb, &expr));

            // Sanity: the RE's bindings are exactly the entity — the
            // invariant that makes the generated query trustworthy.
            let eval = remi_core::eval::Evaluator::new(kb, 64);
            assert!(eval.is_referring_expression(&expr.parts, &[entity.0]));
            if generated >= 6 {
                println!("… ({} more available; stopping the demo here)", 6);
                return;
            }
        }
    }
}
