//! Live KB ingestion: append facts to a resident KB through the delta
//! overlay — first with the library API (epochs, snapshots, compaction),
//! then over HTTP against a running `remi-serve` instance.
//!
//! Run with `cargo run --example live_ingest`.

use remi_kb::delta::CompactionPolicy;
use remi_kb::term::Term;
use remi_kb::LiveKb;
use remi_serve::client::Client;
use remi_serve::http::percent_encode;
use remi_serve::{serve, ServeConfig};

fn main() {
    // --- library layer: LiveKb ----------------------------------------
    let synth = remi_synth::generate(&remi_synth::dbpedia_like(), 0.2, 42);
    let live = LiveKb::with_policy(
        synth.kb.clone(),
        CompactionPolicy {
            min_delta: 2,
            delta_fraction: 0.0,
        },
    );
    let frozen = live.snapshot();
    println!(
        "epoch {} — {} triples, fingerprint {:016x}",
        frozen.epoch,
        frozen.kb.num_triples(),
        frozen.fingerprint
    );

    // Append a batch: new entities, a new predicate, one duplicate.
    let out = live.append(vec![
        (
            Term::iri("e:Explorer_1"),
            "p:discovered".to_string(),
            Term::iri("e:Island_1"),
        ),
        (
            Term::iri("e:Explorer_1"),
            "p:discovered".to_string(),
            Term::iri("e:Island_2"),
        ),
        (
            Term::iri("e:Explorer_1"),
            "p:discovered".to_string(),
            Term::iri("e:Island_1"), // duplicate inside the batch
        ),
    ]);
    let fresh = live.snapshot();
    println!(
        "append: +{} triples ({} duplicates) → epoch {}, fingerprint {:016x}",
        out.appended, out.duplicates, out.epoch, fresh.fingerprint
    );

    // The pinned snapshot is untouched; the fresh one sees the facts.
    let p = fresh.kb.pred_id("p:discovered").expect("new predicate");
    println!(
        "pinned epoch {} knows p:discovered: {} | fresh epoch {}: {} facts",
        frozen.epoch,
        frozen.kb.pred_id("p:discovered").is_some(),
        fresh.epoch,
        fresh.kb.index(p).num_facts(),
    );

    // Fold the overlay into a fresh base: content (and fingerprint)
    // unchanged, delta empty.
    assert!(live.needs_compaction());
    let fold = live.compact();
    let folded = live.snapshot();
    println!(
        "compaction folded {} triples in {:.1?} → epoch {}, fingerprint stable: {}",
        fold.folded,
        fold.duration,
        fold.epoch,
        folded.fingerprint == fresh.fingerprint,
    );

    // --- HTTP layer: POST /ingest --------------------------------------
    let mut server = serve(
        synth.kb.clone(),
        ServeConfig {
            cache_entries: 256,
            compact_min_delta: 4,
            ..ServeConfig::default()
        },
    )
    .expect("bind an ephemeral loopback port");
    println!("\nserving on {}", server.url());
    let mut client = Client::connect(server.addr()).expect("connect");

    // Describe an entity that does not exist yet.
    let miss = client
        .get(&format!("/describe/{}", percent_encode("e:Atlantis_1")))
        .expect("describe");
    println!("GET /describe/e:Atlantis_1 → {}", miss.status);

    // Ingest facts about it, then describe again: servable immediately.
    let ingest = client
        .post(
            "/ingest",
            "<e:Atlantis_1> <p:locatedIn> <e:Ocean_1> .\n\
             <e:Atlantis_2> <p:locatedIn> <e:Ocean_1> .\n\
             <e:Atlantis_1> <p:submerged> <e:Ocean_1> .\n",
        )
        .expect("ingest");
    println!("POST /ingest → {} {}", ingest.status, ingest.body);

    let hit = client
        .get(&format!("/describe/{}", percent_encode("e:Atlantis_1")))
        .expect("describe");
    println!("GET /describe/e:Atlantis_1 → {} {}", hit.status, hit.body);

    // The stats surface the live counters (epoch, delta, compactions).
    let stats = client.get("/stats").expect("stats");
    println!("GET /stats → {}", stats.body);

    server.shutdown();
    println!("server drained and shut down");
}
